//! Delta re-screening over grid neighbourhoods.
//!
//! A full grid screen visits every occupied cell. But when only `k` of `n`
//! satellites changed since the last screen, the candidate pairs that can
//! have changed are exactly those involving a changed satellite — and the
//! spatial grid answers "who is near satellite `c` at step `s`?" with one
//! cell lookup plus its 26 neighbours (§III-A). The engine therefore keeps
//! the maintained conjunction set warm and, per delta, rebuilds the grid
//! per step (O(n) inserts, the same cost the full screen pays) but extracts
//! candidates only from the changed satellites' neighbourhoods — O(k ·
//! occupancy) instead of O(occupied cells · occupancy), and refines only
//! pairs involving changed satellites.
//!
//! Correctness invariant (checked by `tests/delta_correctness.rs`): a delta
//! screen after `k` element updates produces *exactly* the conjunction set
//! of a cold full re-screen. This holds because (1) adjacency is symmetric
//! — a pair's candidate entries exist iff the two satellites share a cell
//! or neighbouring cells, which only depends on their own positions; (2)
//! pairs with neither satellite changed keep identical entries and
//! therefore identical refined conjunctions; (3) refinement and TCA dedup
//! are deterministic functions of (pair, steps, config).

use crate::catalog::Removal;
use crate::error::ServiceError;
use crate::shard::{extract_step_sharded, ShardMap, ShardScratch, ShardScreenStats, ShardSpec};
use kessler_core::cancel::{check_opt, CancelToken, Cancelled};
use kessler_core::conjunction::{dedup_conjunctions, Conjunction, ScreeningReport};
use kessler_core::refine::{grid_refine_interval, refine_pair};
use kessler_core::timing::{PhaseTimer, PhaseTimings};
use kessler_core::{
    group_pairs, refine_filtered_pair, FilterChain, FilterConfig, FilterDecision,
    FilterStatsSnapshot, GridScreener, HybridScreener, MemoryModel, Screener, ScreeningConfig,
    Variant,
};
use kessler_grid::cellkey::cell_key_of;
use kessler_grid::neighbor::FULL_NEIGHBORHOOD;
use kessler_grid::pairset::CandidatePair;
use kessler_grid::SpatialGrid;
use kessler_math::{Interval, Vec3};
use kessler_orbits::{BatchPropagator, ContourSolver, KeplerElements};
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Variant label grid delta reports carry.
pub const DELTA_VARIANT: &str = "grid-delta";

/// Variant label hybrid delta reports carry.
pub const HYBRID_DELTA_VARIANT: &str = "hybrid-delta";

/// The screening pipeline a service engine runs: which variant, its
/// validated configuration, and the filter/solver setup the jobs share.
/// Built only through the fallible [`Pipeline::new`], so a bad
/// variant/config combination is an error response at construction time,
/// never a panic inside a running job.
#[derive(Clone, Copy)]
pub struct Pipeline {
    variant: Variant,
    config: ScreeningConfig,
    filter_config: FilterConfig,
    solver: ContourSolver,
    /// When set, candidate extraction runs per-shard grids (see the
    /// [`crate::shard`] module); `None` is the unsharded baseline the
    /// sharded path must match bit-for-bit.
    shards: Option<ShardSpec>,
}

impl Pipeline {
    pub fn new(config: ScreeningConfig, variant: Variant) -> Result<Pipeline, ServiceError> {
        match variant {
            Variant::Grid | Variant::Hybrid => {}
            other => {
                return Err(ServiceError::Config(format!(
                    "the service screens with the grid or hybrid variant, not `{}`",
                    other.label()
                )));
            }
        }
        config.validate().map_err(ServiceError::Config)?;
        Ok(Pipeline {
            variant,
            config,
            filter_config: FilterConfig::new(config.threshold_km),
            solver: ContourSolver::default(),
            shards: None,
        })
    }

    /// Enable (or disable, with `None`) sharded candidate extraction.
    /// Validates the spec, so a running job never sees a bad partition.
    pub fn with_shards(mut self, shards: Option<ShardSpec>) -> Result<Pipeline, ServiceError> {
        if let Some(spec) = shards {
            spec.validate()?;
        }
        self.shards = shards;
        Ok(self)
    }

    /// The sharding spec, when sharded extraction is enabled.
    pub fn shards(&self) -> Option<ShardSpec> {
        self.shards
    }

    /// The shard partition, when sharding is enabled. The spec was
    /// validated by [`Pipeline::with_shards`], so this cannot fail.
    pub fn shard_map(&self) -> Option<ShardMap> {
        self.shards
            .map(|spec| ShardMap::new(spec).expect("shard spec was validated at construction"))
    }

    pub fn variant(&self) -> Variant {
        self.variant
    }

    pub fn config(&self) -> &ScreeningConfig {
        &self.config
    }

    /// Variant label this pipeline's delta screens report.
    pub fn delta_variant(&self) -> &'static str {
        match self.variant {
            Variant::Hybrid => HYBRID_DELTA_VARIANT,
            _ => DELTA_VARIANT,
        }
    }

    /// Run one full screen of `population` under `config` (the advance
    /// path passes a shortened-span copy for the tail). The screeners are
    /// built through their fallible constructors; `Pipeline::new` already
    /// validated the config, so construction cannot fail here.
    ///
    /// With sharding enabled the full screen routes through the sharded
    /// extraction path (a delta over *every* satellite against an empty
    /// warm set — provably the same conjunction set), so full screens,
    /// deltas and advance tails all exercise the per-shard grids.
    fn screen_full(
        &self,
        config: &ScreeningConfig,
        population: &[KeplerElements],
        cancel: Option<&CancelToken>,
    ) -> Result<ScreeningReport, Cancelled> {
        if self.shards.is_some() {
            let (report, _pairs, _stats) = sharded_full_screen(self, config, population, cancel)?;
            return Ok(report);
        }
        match self.variant {
            Variant::Hybrid => {
                let screener = HybridScreener::try_new(*config)
                    .expect("pipeline config was validated at construction")
                    .with_filter_config(self.filter_config);
                match cancel {
                    Some(token) => screener.screen_cancellable(population, token),
                    None => Ok(screener.screen(population)),
                }
            }
            _ => {
                let screener = GridScreener::try_new(*config)
                    .expect("pipeline config was validated at construction");
                match cancel {
                    Some(token) => screener.screen_cancellable(population, token),
                    None => Ok(screener.screen(population)),
                }
            }
        }
    }
}

/// Refinement proceeds in chunks of this many candidates between
/// cancellation checks (mirrors the grid screener's granularity).
const REFINE_CHUNK: usize = 8192;

/// Maintained conjunction set grouped by satellite pair.
pub type PairMap = HashMap<(u32, u32), Vec<Conjunction>>;

/// Which pre-screen a window advance folded in to bring a stale or cold
/// engine current before sliding (drives the screen counters on adoption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvanceFold {
    /// Engine was warm and current; only the window slid.
    None,
    /// Cold fallback: a full screen ran first.
    Full,
    /// Pending changes: a delta screen ran first.
    Delta,
}

/// Result of a sliding-window advance (see [`DeltaEngine::advance_window`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceOutcome {
    /// Conjunctions whose TCA slid out of the window.
    pub retired: usize,
    /// New conjunctions discovered in the freshly exposed tail.
    pub discovered: usize,
}

/// A conjunction-screening engine that stays warm between requests.
///
/// The screening pipelines themselves live in the free functions
/// [`full_screen_job`], [`delta_screen_job`] and [`advance_window_job`]:
/// pure, cancellable computations over immutable inputs. The engine's
/// methods capture their inputs, run the job uncancellably, and adopt the
/// result — the same capture → run → adopt protocol the execution layer
/// follows with worker threads, which is what keeps the concurrent path
/// equivalent to this synchronous one.
pub struct DeltaEngine {
    pipeline: Pipeline,
    /// Maintained conjunction set, grouped by satellite pair. TCAs are
    /// seconds past the *current* element epoch (window-relative). Behind
    /// `Arc` so jobs can hold the warm set while the engine moves on.
    pairs: Arc<PairMap>,
    /// Population size of the last adopted screen; `None` while cold.
    screened_n: Option<usize>,
    full_screens: u64,
    delta_screens: u64,
    last_timings: PhaseTimings,
    /// Variant label of the last *adopted* screen (full label for full
    /// screens and advance tails, delta label for deltas); `None` until
    /// one has been adopted or restored.
    last_variant: Option<String>,
    /// Filter-chain stats of the last adopted screen, when the variant
    /// runs the chain.
    last_filter_stats: Option<FilterStatsSnapshot>,
}

impl DeltaEngine {
    /// Grid-variant engine (the historical default).
    pub fn new(config: ScreeningConfig) -> Result<DeltaEngine, ServiceError> {
        DeltaEngine::with_variant(config, Variant::Grid)
    }

    /// Engine screening with `variant` (grid or hybrid).
    pub fn with_variant(
        config: ScreeningConfig,
        variant: Variant,
    ) -> Result<DeltaEngine, ServiceError> {
        Ok(DeltaEngine {
            pipeline: Pipeline::new(config, variant)?,
            pairs: Arc::new(PairMap::new()),
            screened_n: None,
            full_screens: 0,
            delta_screens: 0,
            last_timings: PhaseTimings::default(),
            last_variant: None,
            last_filter_stats: None,
        })
    }

    /// Rebuild a warm grid-variant engine from snapshotted state.
    pub fn restore(
        config: ScreeningConfig,
        screened_n: Option<usize>,
        full_screens: u64,
        delta_screens: u64,
        conjunctions: &[Conjunction],
    ) -> Result<DeltaEngine, ServiceError> {
        DeltaEngine::restore_with_variant(
            config,
            Variant::Grid,
            screened_n,
            full_screens,
            delta_screens,
            conjunctions,
        )
    }

    /// Rebuild a warm engine from snapshotted state (see the service's
    /// persistence layer): screen counters plus the maintained conjunction
    /// set, regrouped by pair.
    pub fn restore_with_variant(
        config: ScreeningConfig,
        variant: Variant,
        screened_n: Option<usize>,
        full_screens: u64,
        delta_screens: u64,
        conjunctions: &[Conjunction],
    ) -> Result<DeltaEngine, ServiceError> {
        let mut engine = DeltaEngine::with_variant(config, variant)?;
        if screened_n.is_none() && !conjunctions.is_empty() {
            return Err(ServiceError::Recovery(format!(
                "cold engine cannot hold {} conjunctions",
                conjunctions.len()
            )));
        }
        if let Some(n) = screened_n {
            if let Some(c) = conjunctions.iter().find(|c| c.pair().1 as usize >= n) {
                return Err(ServiceError::Recovery(format!(
                    "conjunction references index {} past population of {n}",
                    c.pair().1
                )));
            }
        }
        engine.pairs = Arc::new(pairs_from_conjunctions(conjunctions));
        engine.screened_n = screened_n;
        engine.full_screens = full_screens;
        engine.delta_screens = delta_screens;
        Ok(engine)
    }

    pub fn config(&self) -> &ScreeningConfig {
        self.pipeline.config()
    }

    /// The screening variant this engine runs.
    pub fn variant(&self) -> Variant {
        self.pipeline.variant()
    }

    /// The full screening pipeline (for capturing jobs against).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Enable (or disable, with `None`) sharded candidate extraction on
    /// this engine's pipeline. Purely an execution-strategy switch: the
    /// maintained conjunction set is unaffected, so it is safe to flip on
    /// a warm engine (recovery restores the engine, then applies the
    /// server's sharding option).
    pub fn set_shards(&mut self, shards: Option<ShardSpec>) -> Result<(), ServiceError> {
        self.pipeline = self.pipeline.with_shards(shards)?;
        Ok(())
    }

    /// `true` once a full screen has populated the maintained set.
    pub fn is_warm(&self) -> bool {
        self.screened_n.is_some()
    }

    /// Population size of the last adopted screen; `None` while cold.
    pub fn screened_n(&self) -> Option<usize> {
        self.screened_n
    }

    pub fn full_screens(&self) -> u64 {
        self.full_screens
    }

    pub fn delta_screens(&self) -> u64 {
        self.delta_screens
    }

    /// Timings of the most recent screen (full or delta).
    pub fn last_timings(&self) -> &PhaseTimings {
        &self.last_timings
    }

    /// Variant label of the last adopted screen (e.g. `grid`,
    /// `hybrid-delta`); `None` until one has been adopted or restored.
    pub fn last_variant(&self) -> Option<&str> {
        self.last_variant.as_deref()
    }

    /// Filter-chain stats of the last adopted screen, when the variant
    /// runs the chain (hybrid); `None` otherwise.
    pub fn last_filter_stats(&self) -> Option<FilterStatsSnapshot> {
        self.last_filter_stats
    }

    /// Adopt snapshotted last-screen info after [`DeltaEngine::restore`]
    /// (which otherwise leaves it zeroed), so a recovered daemon's STATUS
    /// keeps reporting the pre-crash screen cost and variant.
    pub fn restore_last_screen(
        &mut self,
        variant: String,
        timings: PhaseTimings,
        filter_stats: Option<FilterStatsSnapshot>,
    ) {
        self.last_variant = Some(variant);
        self.last_timings = timings;
        self.last_filter_stats = filter_stats;
    }

    /// Number of maintained conjunctions.
    pub fn conjunction_count(&self) -> usize {
        self.pairs.values().map(Vec::len).sum()
    }

    /// The maintained conjunction set, sorted by pair then TCA.
    pub fn conjunctions(&self) -> Vec<Conjunction> {
        sorted_conjunctions(&self.pairs)
    }

    /// A shared handle to the warm pair map, for jobs that screen against
    /// a snapshot while the engine keeps serving.
    pub(crate) fn warm_pairs(&self) -> Arc<PairMap> {
        Arc::clone(&self.pairs)
    }

    /// Adopt a completed full screen as the maintained set.
    pub(crate) fn adopt_full(
        &mut self,
        pairs: PairMap,
        n: usize,
        timings: PhaseTimings,
        filter_stats: Option<FilterStatsSnapshot>,
    ) {
        self.pairs = Arc::new(pairs);
        self.screened_n = Some(n);
        self.full_screens += 1;
        self.last_timings = timings;
        self.last_variant = Some(self.pipeline.variant().label().to_string());
        self.last_filter_stats = filter_stats;
    }

    /// Adopt a completed delta screen as the maintained set.
    pub(crate) fn adopt_delta(
        &mut self,
        pairs: PairMap,
        n: usize,
        timings: PhaseTimings,
        filter_stats: Option<FilterStatsSnapshot>,
    ) {
        self.pairs = Arc::new(pairs);
        self.screened_n = Some(n);
        self.delta_screens += 1;
        self.last_timings = timings;
        self.last_variant = Some(self.pipeline.delta_variant().to_string());
        self.last_filter_stats = filter_stats;
    }

    /// Adopt a completed window advance; `fold` records which pre-screen
    /// the advance ran to bring the engine current, so the screen counters
    /// match the synchronous path. The last-screen info describes the tail
    /// screen, which runs the engine's full variant.
    pub(crate) fn adopt_advance(
        &mut self,
        pairs: PairMap,
        n: usize,
        timings: PhaseTimings,
        filter_stats: Option<FilterStatsSnapshot>,
        fold: AdvanceFold,
    ) {
        self.pairs = Arc::new(pairs);
        self.screened_n = Some(n);
        match fold {
            AdvanceFold::None => {}
            AdvanceFold::Full => self.full_screens += 1,
            AdvanceFold::Delta => self.delta_screens += 1,
        }
        self.last_timings = timings;
        self.last_variant = Some(self.pipeline.variant().label().to_string());
        self.last_filter_stats = filter_stats;
    }

    /// Cold full screen; adopts the result as the maintained set.
    pub fn full_screen(&mut self, population: &[KeplerElements]) -> ScreeningReport {
        let (report, _shard_stats) = full_screen_job(&self.pipeline, population, None)
            .expect("uncancellable screen cannot be cancelled");
        self.adopt_full(
            pairs_from_conjunctions(&report.conjunctions),
            report.n_satellites,
            report.timings,
            report.filter_stats,
        );
        report
    }

    /// Drop every maintained conjunction involving dense index `index`.
    pub fn invalidate_index(&mut self, index: u32) {
        Arc::make_mut(&mut self.pairs).retain(|&(lo, hi), _| lo != index && hi != index);
    }

    /// Account for a catalog `swap_remove`: pairs of the removed satellite
    /// are gone, pairs keyed under the mover's old index are stale, and the
    /// caller must mark `removal.removed_index` as changed when a satellite
    /// actually moved into the hole.
    pub fn apply_removal(&mut self, removal: Removal, new_len: usize) {
        apply_removal_to_pairs(Arc::make_mut(&mut self.pairs), removal, new_len);
        if self.screened_n.is_some() {
            self.screened_n = Some(new_len);
        }
    }

    /// Re-screen only the neighbourhoods of `changed` satellites and merge
    /// into the maintained set. `population` is the complete current
    /// element slice; `changed` lists every dense index whose elements
    /// differ from the last adopted screen (including newly added
    /// satellites). Falls back to a full screen while cold.
    ///
    /// The returned report's `conjunctions` is the full maintained set —
    /// directly comparable with a cold full re-screen — while
    /// `candidate_entries`/`candidate_pairs` count only the delta work.
    pub fn delta_screen(
        &mut self,
        population: &[KeplerElements],
        changed: &[u32],
    ) -> ScreeningReport {
        if self.screened_n.is_none() {
            return self.full_screen(population);
        }
        let (report, pairs, _shard_stats) =
            delta_screen_job(&self.pipeline, population, changed, &self.pairs, None)
                .expect("uncancellable screen cannot be cancelled");
        self.adopt_delta(
            pairs,
            report.n_satellites,
            report.timings,
            report.filter_stats,
        );
        report
    }

    /// Slide the window forward by `dt` seconds: retire conjunctions whose
    /// TCA dropped before the new window start, shift the surviving TCAs to
    /// the new epoch, and screen the freshly exposed tail. `population`
    /// must already be advanced to the new epoch (`Catalog::advance_all`).
    pub fn advance_window(
        &mut self,
        population: &[KeplerElements],
        dt: f64,
    ) -> Result<AdvanceOutcome, ServiceError> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(ServiceError::InvalidRequest(format!(
                "advance dt must be positive and finite, got {dt}"
            )));
        }
        if self.screened_n.is_none() {
            self.full_screen(population);
            return Ok(AdvanceOutcome {
                retired: 0,
                discovered: self.conjunction_count(),
            });
        }

        let warm = Arc::try_unwrap(std::mem::take(&mut self.pairs))
            .unwrap_or_else(|shared| (*shared).clone());
        let (pairs, outcome, timings, filter_stats) =
            advance_window_job(&self.pipeline, population, dt, warm, None)
                .expect("uncancellable screen cannot be cancelled");
        self.pairs = Arc::new(pairs);
        self.last_timings = timings;
        self.last_variant = Some(self.pipeline.variant().label().to_string());
        self.last_filter_stats = filter_stats;
        Ok(outcome)
    }
}

/// Regroup a flat conjunction list by pair.
pub(crate) fn pairs_from_conjunctions(conjunctions: &[Conjunction]) -> PairMap {
    let mut pairs = PairMap::new();
    for c in conjunctions {
        pairs.entry(c.pair()).or_default().push(*c);
    }
    pairs
}

/// Flatten a pair map, sorted by pair then TCA.
pub(crate) fn sorted_conjunctions(pairs: &PairMap) -> Vec<Conjunction> {
    let mut all: Vec<Conjunction> = pairs.values().flatten().copied().collect();
    all.sort_by(|a, b| a.pair().cmp(&b.pair()).then(a.tca.total_cmp(&b.tca)));
    all
}

/// Apply a catalog `swap_remove` to a bare pair map (the engine method
/// [`DeltaEngine::apply_removal`] and the execution layer's stale-result
/// replay both route through this, so they invalidate identically).
pub(crate) fn apply_removal_to_pairs(pairs: &mut PairMap, removal: Removal, new_len: usize) {
    pairs.retain(|&(lo, hi), _| lo != removal.removed_index && hi != removal.removed_index);
    if let Some(moved) = removal.moved_from {
        pairs.retain(|&(lo, hi), _| lo != moved && hi != moved);
    }
    // Defensive: nothing may reference indices at or past the new end.
    pairs.retain(|&(_, hi), _| (hi as usize) < new_len);
}

/// Cold full screen as a pure job, with the pipeline's variant. With a
/// token, cancellation is checked at the screener's phase boundaries.
/// The per-shard stats are `Some` iff the pipeline is sharded.
pub fn full_screen_job(
    pipeline: &Pipeline,
    population: &[KeplerElements],
    cancel: Option<&CancelToken>,
) -> Result<(ScreeningReport, Option<ShardScreenStats>), Cancelled> {
    if pipeline.shards.is_some() {
        let (report, _pairs, stats) =
            sharded_full_screen(pipeline, pipeline.config(), population, cancel)?;
        return Ok((report, stats));
    }
    Ok((
        pipeline.screen_full(pipeline.config(), population, cancel)?,
        None,
    ))
}

/// Full screen via the sharded extraction path: a delta over *every*
/// satellite against an empty warm set. The delta == cold-full invariant
/// (every candidate neighbourhood is queried, refinement parameters are
/// identical) makes the conjunction set equal to the unsharded full
/// screen; the report keeps the full-screen variant label. `config` is a
/// parameter because the advance path screens its tail under a
/// shortened-span copy.
fn sharded_full_screen(
    pipeline: &Pipeline,
    config: &ScreeningConfig,
    population: &[KeplerElements],
    cancel: Option<&CancelToken>,
) -> Result<(ScreeningReport, PairMap, Option<ShardScreenStats>), Cancelled> {
    let all: Vec<u32> = (0..population.len() as u32).collect();
    let warm = PairMap::new();
    let (mut report, pairs, stats) =
        delta_screen_with_config(pipeline, config, population, &all, &warm, cancel)?;
    report.variant = pipeline.variant().label().to_string();
    Ok((report, pairs, stats))
}

/// Delta screen as a pure job: re-screen only the neighbourhoods of
/// `changed` satellites against the `warm` maintained set and return the
/// merged map plus a report whose `conjunctions` is the full merged set
/// (directly comparable with a cold full re-screen) while
/// `candidate_entries`/`candidate_pairs` count only the delta work.
///
/// `cancel` is checked between grid sampling steps, between filter
/// chunks, and between refinement chunks; the inputs are never mutated,
/// so a cancelled job leaves no trace.
pub fn delta_screen_job(
    pipeline: &Pipeline,
    population: &[KeplerElements],
    changed: &[u32],
    warm: &PairMap,
    cancel: Option<&CancelToken>,
) -> Result<(ScreeningReport, PairMap, Option<ShardScreenStats>), Cancelled> {
    delta_screen_with_config(
        pipeline,
        pipeline.config(),
        population,
        changed,
        warm,
        cancel,
    )
}

/// The delta pipeline proper, with the screening config as an explicit
/// parameter so the sharded full/tail screens can pass an override.
fn delta_screen_with_config(
    pipeline: &Pipeline,
    config: &ScreeningConfig,
    population: &[KeplerElements],
    changed: &[u32],
    warm: &PairMap,
    cancel: Option<&CancelToken>,
) -> Result<(ScreeningReport, PairMap, Option<ShardScreenStats>), Cancelled> {
    let solver = &pipeline.solver;
    let wall = Instant::now();
    let mut timings = PhaseTimings::default();
    let n = population.len();
    // Plan with the pipeline's variant so extraction runs at the same
    // cell/step sizes as the cold full screen it must exactly equal.
    let planner = MemoryModel::new(pipeline.variant()).plan(n, config);

    // Stale-pair invalidation: every pair involving a changed satellite is
    // recomputed from scratch below; pairs past the population end cannot
    // exist.
    let changed_set: BTreeSet<u32> = changed
        .iter()
        .copied()
        .filter(|&c| (c as usize) < n)
        .collect();
    let mut pairs: PairMap = warm
        .iter()
        .filter(|&(&(lo, hi), _)| {
            (hi as usize) < n && !changed_set.contains(&lo) && !changed_set.contains(&hi)
        })
        .map(|(&key, list)| (key, list.clone()))
        .collect();

    // Candidate extraction: rebuild the grid(s) per step (same O(n)
    // insert cost as the full screen) but query only the changed
    // satellites' 27-cell neighbourhoods. Sharded pipelines build one
    // grid per shard and query each changed satellite in its home shard
    // (boundary mirroring makes that exactly equal — see `crate::shard`);
    // either way the emitted entries carry global indices, so everything
    // downstream is identical.
    let propagator = BatchPropagator::new(population);
    let mut entries: HashSet<CandidatePair> = HashSet::new();
    let shard_map = pipeline.shard_map();
    let mut shard_stats = shard_map
        .as_ref()
        .map(|map| ShardScreenStats::new(map.shard_count()));
    if let (Some(map), Some(stats)) = (&shard_map, shard_stats.as_mut()) {
        let mut scratch = ShardScratch::new(map.shard_count());
        let changed_list: Vec<u32> = changed_set.iter().copied().collect();
        let mut positions: Vec<Vec3> = vec![Vec3::ZERO; n];
        for step in 0..planner.total_steps {
            check_opt(cancel)?;
            let t = step as f64 * planner.seconds_per_sample;
            {
                let _timer = PhaseTimer::start(&mut timings.insertion);
                propagator.positions_into(t, &mut positions);
            }
            let _timer = PhaseTimer::start(&mut timings.pair_extraction);
            extract_step_sharded(
                map,
                &positions,
                &changed_list,
                planner.cell_size_km,
                step,
                &mut scratch,
                &mut entries,
                stats,
            );
        }
    } else {
        let grid = SpatialGrid::new(n, planner.cell_size_km);
        let mut positions: Vec<Vec3> = vec![Vec3::ZERO; n];
        for step in 0..planner.total_steps {
            check_opt(cancel)?;
            let t = step as f64 * planner.seconds_per_sample;
            {
                let _timer = PhaseTimer::start(&mut timings.insertion);
                propagator.positions_into(t, &mut positions);
                if step > 0 {
                    grid.reset();
                }
                grid.insert_all(&positions)
                    .expect("grid sized at 2n slots cannot fill up");
            }
            let _timer = PhaseTimer::start(&mut timings.pair_extraction);
            for &c in &changed_set {
                let key = cell_key_of(positions[c as usize], planner.cell_size_km);
                if let Some(slot) = grid.lookup_cell(key) {
                    for m in grid.cell_members(slot) {
                        if m != c {
                            entries.insert(CandidatePair::new(c, m, step));
                        }
                    }
                }
                for &(dx, dy, dz) in FULL_NEIGHBORHOOD.iter() {
                    let Some(neighbor) = key.offset(dx, dy, dz) else {
                        continue;
                    };
                    if let Some(slot) = grid.lookup_cell(neighbor) {
                        for m in grid.cell_members(slot) {
                            entries.insert(CandidatePair::new(c, m, step));
                        }
                    }
                }
            }
        }
    }

    // Refinement: identical parameters to the variant's cold screen, so a
    // changed pair refines to bit-identical conjunctions. Chunked so a
    // tripped token is observed between chunks; `dedup_conjunctions`
    // sorts, so chunk order does not affect the result.
    let mut found: Vec<Conjunction> = Vec::new();
    let mut filter_stats: Option<FilterStatsSnapshot> = None;
    let columns = propagator.columns();
    let mut entry_list: Vec<CandidatePair> = entries.iter().copied().collect();
    entry_list.sort_unstable();
    match pipeline.variant() {
        Variant::Hybrid => {
            // The cold hybrid pipeline restricted to changed pairs: group
            // the (pair, step) entries, run the orbital filter chain, then
            // refine inside the filter-derived windows (coplanar pairs
            // fall back to per-step intervals).
            let grouped = group_pairs(entry_list);
            let chain = FilterChain::new(pipeline.filter_config);
            let span = Interval::new(0.0, config.span_seconds);
            let mut decisions: Vec<FilterDecision> = Vec::with_capacity(grouped.len());
            {
                let _timer = PhaseTimer::start(&mut timings.filters);
                for chunk in grouped.chunks(REFINE_CHUNK) {
                    check_opt(cancel)?;
                    decisions.par_extend(chunk.par_iter().map(|g| {
                        chain.evaluate(
                            &population[g.id_lo as usize],
                            &population[g.id_hi as usize],
                            span,
                        )
                    }));
                }
            }
            {
                let _timer = PhaseTimer::start(&mut timings.refinement);
                for (gchunk, dchunk) in grouped
                    .chunks(REFINE_CHUNK)
                    .zip(decisions.chunks(REFINE_CHUNK))
                {
                    check_opt(cancel)?;
                    found.par_extend(gchunk.par_iter().zip(dchunk.par_iter()).flat_map_iter(
                        |(g, decision)| {
                            refine_filtered_pair(
                                &columns.gather(g.id_lo as usize),
                                &columns.gather(g.id_hi as usize),
                                solver,
                                g,
                                decision,
                                &planner,
                                config.threshold_km,
                            )
                        },
                    ));
                }
            }
            filter_stats = Some(chain.stats.snapshot());
        }
        _ => {
            let _timer = PhaseTimer::start(&mut timings.refinement);
            for chunk in entry_list.chunks(REFINE_CHUNK) {
                check_opt(cancel)?;
                found.par_extend(chunk.par_iter().filter_map(|entry| {
                    let a = columns.gather(entry.id_lo as usize);
                    let b = columns.gather(entry.id_hi as usize);
                    let t = entry.step as f64 * planner.seconds_per_sample;
                    let interval = grid_refine_interval(&a, &b, solver, t, planner.cell_size_km);
                    refine_pair(
                        &a,
                        &b,
                        solver,
                        entry.id_lo,
                        entry.id_hi,
                        interval,
                        config.threshold_km,
                    )
                }));
            }
        }
    }
    let mut found = dedup_conjunctions(found, config.tca_dedup_tolerance_s);
    if pipeline.variant() == Variant::Hybrid {
        // The cold hybrid screen clips to the span after dedup; the delta
        // must apply the identical clip for exact equality.
        found.retain(|c| c.tca >= -1e-9 && c.tca <= config.span_seconds + 1e-9);
    }
    for c in found {
        pairs.entry(c.pair()).or_default().push(c);
    }

    let candidate_pairs = entries
        .iter()
        .map(|e| (e.id_lo, e.id_hi))
        .collect::<HashSet<_>>()
        .len();
    let candidate_entries = entries.len();
    timings.total = wall.elapsed();

    let report = ScreeningReport {
        variant: pipeline.delta_variant().to_string(),
        n_satellites: n,
        config: *config,
        conjunctions: sorted_conjunctions(&pairs),
        candidate_entries,
        candidate_pairs,
        pair_set_regrows: 0,
        timings,
        planner,
        filter_stats,
        device_metrics: None,
    };
    Ok((report, pairs, shard_stats))
}

/// Window advance as a pure job over an owned copy of the maintained set:
/// retire conjunctions whose TCA dropped before the new window start,
/// shift the survivors, screen the freshly exposed tail, and merge.
/// `population` must already be advanced to the new epoch and `dt` must be
/// positive and finite (the callers validate).
pub fn advance_window_job(
    pipeline: &Pipeline,
    population: &[KeplerElements],
    dt: f64,
    mut pairs: PairMap,
    cancel: Option<&CancelToken>,
) -> Result<
    (
        PairMap,
        AdvanceOutcome,
        PhaseTimings,
        Option<FilterStatsSnapshot>,
    ),
    Cancelled,
> {
    let config = pipeline.config();
    let span = config.span_seconds;
    let overlap = config.seconds_per_sample;
    check_opt(cancel)?;

    // Retire + shift: TCAs are relative to the element epoch, which just
    // moved forward by dt.
    let mut retired = 0usize;
    for list in pairs.values_mut() {
        let before = list.len();
        list.retain_mut(|c| {
            c.tca -= dt;
            c.tca >= 0.0
        });
        retired += before - list.len();
    }
    pairs.retain(|_, list| !list.is_empty());

    // Screen the newly exposed tail [span − dt − overlap, span]; the
    // one-sample overlap re-covers the seam so a minimum straddling the
    // old window end is not lost. Merging dedups re-found seam minima.
    let tail_offset = (span - dt - overlap).max(0.0);
    let tail_span = span - tail_offset;
    let tail_elements: Vec<KeplerElements> = population
        .iter()
        .map(|el| {
            let mut advanced = *el;
            advanced.mean_anomaly = el.mean_anomaly_at(tail_offset);
            advanced
        })
        .collect();
    let mut tail_config = *config;
    tail_config.span_seconds = tail_span;
    let report = pipeline.screen_full(&tail_config, &tail_elements, cancel)?;

    let merge_tol = config.tca_dedup_tolerance_s.max(overlap);
    let mut discovered = 0usize;
    for c in &report.conjunctions {
        let mut shifted = *c;
        shifted.tca += tail_offset;
        let list = pairs.entry(shifted.pair()).or_default();
        match list
            .iter_mut()
            .find(|e| (e.tca - shifted.tca).abs() <= merge_tol)
        {
            Some(existing) => {
                if shifted.pca_km < existing.pca_km {
                    *existing = shifted;
                }
            }
            None => {
                list.push(shifted);
                discovered += 1;
            }
        }
    }
    Ok((
        pairs,
        AdvanceOutcome {
            retired,
            discovered,
        },
        report.timings,
        report.filter_stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use kessler_population::{PopulationConfig, PopulationGenerator};

    fn population(n: usize, seed: u64) -> Vec<KeplerElements> {
        PopulationGenerator::new(PopulationConfig {
            seed,
            ..Default::default()
        })
        .generate(n)
    }

    fn perturb(el: &KeplerElements, bump: f64) -> KeplerElements {
        KeplerElements::new(
            el.semi_major_axis + bump,
            el.eccentricity,
            el.inclination,
            el.raan + 0.01,
            el.arg_perigee,
            el.mean_anomaly + 0.2,
        )
        .unwrap()
    }

    #[test]
    fn cold_delta_falls_back_to_full_screen() {
        let pop = population(50, 7);
        let config = ScreeningConfig::grid_defaults(5.0, 60.0);
        let mut engine = DeltaEngine::new(config).unwrap();
        assert!(!engine.is_warm());
        let report = engine.delta_screen(&pop, &[]);
        assert_eq!(report.variant, "grid");
        assert!(engine.is_warm());
        assert_eq!(engine.full_screens(), 1);
        assert_eq!(engine.delta_screens(), 0);
    }

    #[test]
    fn delta_after_updates_matches_cold_screen() {
        let pop = population(400, 42);
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut engine = DeltaEngine::new(config).unwrap();
        engine.full_screen(&pop);

        let mut updated = pop.clone();
        let changed: Vec<u32> = (0..8).map(|j| j * 41).collect();
        for &idx in &changed {
            updated[idx as usize] = perturb(&updated[idx as usize], 1.0);
        }
        let delta = engine.delta_screen(&updated, &changed);
        assert_eq!(delta.variant, DELTA_VARIANT);
        let cold = GridScreener::new(config).screen(&updated);
        assert_eq!(delta.pairs_missing_from(&cold), Vec::<(u32, u32)>::new());
        assert_eq!(cold.pairs_missing_from(&delta), Vec::<(u32, u32)>::new());
        assert_eq!(delta.conjunction_count(), cold.conjunction_count());
        for (d, c) in delta.conjunctions.iter().zip(&cold.conjunctions) {
            assert_eq!(d.pair(), c.pair());
            assert!((d.tca - c.tca).abs() < 1e-9, "tca {} vs {}", d.tca, c.tca);
            assert!((d.pca_km - c.pca_km).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_detects_a_newly_created_conjunction() {
        // Two crossing orbits plus a far bystander; start with the pair
        // separated in phase, then move satellite 1 into a head-on crossing.
        let mut pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 3.0).unwrap(),
            KeplerElements::new(42_164.0, 0.0, 0.1, 1.0, 0.0, 0.0).unwrap(),
        ];
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let mut engine = DeltaEngine::new(config).unwrap();
        let report = engine.full_screen(&pop);
        assert_eq!(report.conjunction_count(), 0);

        pop[1] = KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap();
        let report = engine.delta_screen(&pop, &[1]);
        assert!(report.conjunction_count() >= 1);
        assert_eq!(report.conjunctions[0].pair(), (0, 1));
    }

    #[test]
    fn delta_invalidates_a_dissolved_conjunction() {
        let mut pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ];
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let mut engine = DeltaEngine::new(config).unwrap();
        assert!(engine.full_screen(&pop).conjunction_count() >= 1);

        // Phase satellite 1 away from the crossing.
        pop[1] = KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 3.0).unwrap();
        let report = engine.delta_screen(&pop, &[1]);
        assert_eq!(report.conjunction_count(), 0);
    }

    #[test]
    fn removal_matches_cold_screen_after_delta() {
        let pop = population(300, 9);
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut catalog = Catalog::new();
        for (i, el) in pop.iter().enumerate() {
            catalog.add(i as u64, *el).unwrap();
        }
        let mut engine = DeltaEngine::new(config).unwrap();
        engine.full_screen(catalog.elements());

        // Remove a satellite from the middle: the last one swaps into its
        // slot and must be re-screened under its new index.
        let removal = catalog.remove(17).unwrap();
        engine.apply_removal(removal, catalog.len());
        let mut changed = Vec::new();
        if removal.moved_from.is_some() {
            changed.push(removal.removed_index);
        }
        let delta = engine.delta_screen(catalog.elements(), &changed);
        let cold = GridScreener::new(config).screen(catalog.elements());
        assert_eq!(delta.pairs_missing_from(&cold), Vec::<(u32, u32)>::new());
        assert_eq!(cold.pairs_missing_from(&delta), Vec::<(u32, u32)>::new());
        assert_eq!(delta.conjunction_count(), cold.conjunction_count());
    }

    #[test]
    fn advance_window_retires_and_discovers() {
        // Crossing pair: conjunctions at every half period (t = 0, T/2, T…).
        let pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ];
        let period = pop[0].period();
        let config = ScreeningConfig::grid_defaults(2.0, 0.3 * period);
        let mut engine = DeltaEngine::new(config).unwrap();
        let report = engine.full_screen(&pop);
        assert!(report.conjunction_count() >= 1, "t = 0 crossing in window");

        // Advance past the t = 0 encounter but not yet to T/2.
        let mut catalog = Catalog::new();
        catalog.add(0, pop[0]).unwrap();
        catalog.add(1, pop[1]).unwrap();
        let dt = 0.4 * period;
        catalog.advance_all(dt);
        let outcome = engine.advance_window(catalog.elements(), dt).unwrap();
        assert!(outcome.retired >= 1, "the t = 0 conjunction must retire");
        // Window now covers [0.4 T, 0.7 T]: the T/2 encounter is inside.
        let live = engine.conjunctions();
        assert!(
            live.iter()
                .any(|c| { c.pair() == (0, 1) && (c.tca - (0.5 * period - dt)).abs() < 2.0 }),
            "T/2 encounter expected in {live:?}"
        );
    }

    #[test]
    fn restore_rebuilds_a_warm_engine_that_deltas_correctly() {
        let pop = population(300, 11);
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut engine = DeltaEngine::new(config).unwrap();
        engine.full_screen(&pop);
        let saved = engine.conjunctions();

        let mut back = DeltaEngine::restore(
            config,
            engine.screened_n(),
            engine.full_screens(),
            engine.delta_screens(),
            &saved,
        )
        .unwrap();
        assert!(back.is_warm());
        assert_eq!(back.conjunctions(), saved);
        assert_eq!(back.full_screens(), 1);

        // A delta on the restored engine matches a cold screen, i.e. the
        // warm set really carried over.
        let mut updated = pop.clone();
        updated[5] = perturb(&updated[5], 1.0);
        let delta = back.delta_screen(&updated, &[5]);
        let cold = GridScreener::new(config).screen(&updated);
        assert_eq!(delta.pairs_missing_from(&cold), Vec::<(u32, u32)>::new());
        assert_eq!(cold.pairs_missing_from(&delta), Vec::<(u32, u32)>::new());

        // Inconsistent snapshots are rejected.
        assert!(DeltaEngine::restore(config, None, 1, 0, &saved).is_err() || saved.is_empty());
    }

    #[test]
    fn delta_job_with_live_token_matches_the_sync_engine() {
        let pop = population(300, 23);
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut engine = DeltaEngine::new(config).unwrap();
        engine.full_screen(&pop);
        let warm = engine.warm_pairs();
        let pipeline = *engine.pipeline();

        let mut updated = pop.clone();
        let changed = vec![3u32, 140, 271];
        for &idx in &changed {
            updated[idx as usize] = perturb(&updated[idx as usize], 1.0);
        }
        let token = kessler_core::CancelToken::new();
        let (job_report, job_pairs, _shards) =
            delta_screen_job(&pipeline, &updated, &changed, &warm, Some(&token)).unwrap();
        let sync_report = engine.delta_screen(&updated, &changed);
        assert_eq!(
            job_report.conjunction_count(),
            sync_report.conjunction_count()
        );
        for (a, b) in job_report
            .conjunctions
            .iter()
            .zip(&sync_report.conjunctions)
        {
            assert_eq!(a.pair(), b.pair());
            assert_eq!(a.tca.to_bits(), b.tca.to_bits());
            assert_eq!(a.pca_km.to_bits(), b.pca_km.to_bits());
        }
        assert_eq!(sorted_conjunctions(&job_pairs), engine.conjunctions());
    }

    #[test]
    fn jobs_observe_a_pre_tripped_token_and_leave_inputs_alone() {
        let pop = population(50, 3);
        let config = ScreeningConfig::grid_defaults(5.0, 60.0);
        let mut engine = DeltaEngine::new(config).unwrap();
        engine.full_screen(&pop);
        let warm = engine.warm_pairs();
        let before = engine.conjunctions();

        let token = kessler_core::CancelToken::new();
        token.cancel();
        let pipeline = *engine.pipeline();
        assert!(full_screen_job(&pipeline, &pop, Some(&token)).is_err());
        assert!(delta_screen_job(&pipeline, &pop, &[0], &warm, Some(&token)).is_err());
        assert!(advance_window_job(&pipeline, &pop, 10.0, (*warm).clone(), Some(&token)).is_err());
        // The engine's maintained set is untouched by the aborted jobs.
        assert_eq!(engine.conjunctions(), before);
    }

    #[test]
    fn advance_rejects_bad_dt() {
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let mut engine = DeltaEngine::new(config).unwrap();
        assert!(engine.advance_window(&[], -1.0).is_err());
        assert!(engine.advance_window(&[], f64::NAN).is_err());
    }

    #[test]
    fn pipeline_rejects_unserved_variants() {
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        assert!(Pipeline::new(config, Variant::Grid).is_ok());
        assert!(Pipeline::new(config, Variant::Hybrid).is_ok());
        assert!(Pipeline::new(config, Variant::Legacy).is_err());
        assert!(Pipeline::new(config, Variant::Sieve).is_err());
        let mut bad = config;
        bad.threshold_km = -1.0;
        assert!(
            Pipeline::new(bad, Variant::Hybrid).is_err(),
            "invalid config must be an Err, not a panic"
        );
    }

    #[test]
    fn last_variant_tracks_the_adopted_screen_not_the_counters() {
        // Regression: STATUS used to report `grid-delta` whenever any
        // delta had ever run, even after a later full screen.
        let pop = population(50, 7);
        let config = ScreeningConfig::grid_defaults(5.0, 60.0);
        let mut engine = DeltaEngine::new(config).unwrap();
        assert_eq!(engine.last_variant(), None);
        engine.full_screen(&pop);
        assert_eq!(engine.last_variant(), Some("grid"));
        engine.delta_screen(&pop, &[3]);
        assert_eq!(engine.last_variant(), Some(DELTA_VARIANT));
        engine.full_screen(&pop);
        assert_eq!(
            engine.last_variant(),
            Some("grid"),
            "a full screen after a delta must report the full variant"
        );
    }

    #[test]
    fn hybrid_engine_labels_and_stats() {
        let pop = population(80, 13);
        let config = ScreeningConfig::hybrid_defaults(5.0, 120.0);
        let mut engine = DeltaEngine::with_variant(config, Variant::Hybrid).unwrap();
        assert_eq!(engine.variant(), Variant::Hybrid);
        let report = engine.full_screen(&pop);
        assert_eq!(report.variant, "hybrid");
        assert_eq!(engine.last_variant(), Some("hybrid"));
        assert!(engine.last_filter_stats().is_some());
        let report = engine.delta_screen(&pop, &[5]);
        assert_eq!(report.variant, HYBRID_DELTA_VARIANT);
        assert_eq!(engine.last_variant(), Some(HYBRID_DELTA_VARIANT));
        assert!(report.filter_stats.is_some());
    }

    #[test]
    fn hybrid_delta_after_updates_matches_cold_hybrid_screen() {
        let pop = population(400, 42);
        let config = ScreeningConfig::hybrid_defaults(5.0, 120.0);
        let mut engine = DeltaEngine::with_variant(config, Variant::Hybrid).unwrap();
        engine.full_screen(&pop);

        let mut updated = pop.clone();
        let changed: Vec<u32> = (0..8).map(|j| j * 41).collect();
        for &idx in &changed {
            updated[idx as usize] = perturb(&updated[idx as usize], 1.0);
        }
        let delta = engine.delta_screen(&updated, &changed);
        assert_eq!(delta.variant, HYBRID_DELTA_VARIANT);
        let cold = kessler_core::HybridScreener::new(config).screen(&updated);
        assert_eq!(delta.pairs_missing_from(&cold), Vec::<(u32, u32)>::new());
        assert_eq!(cold.pairs_missing_from(&delta), Vec::<(u32, u32)>::new());
        assert_eq!(delta.conjunction_count(), cold.conjunction_count());
        for (d, c) in delta.conjunctions.iter().zip(&cold.conjunctions) {
            assert_eq!(d.pair(), c.pair());
            assert_eq!(d.tca.to_bits(), c.tca.to_bits());
            assert_eq!(d.pca_km.to_bits(), c.pca_km.to_bits());
        }
    }

    #[test]
    fn hybrid_advance_window_screens_the_tail_with_the_chain() {
        let pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ];
        let period = pop[0].period();
        let config = ScreeningConfig::hybrid_defaults(2.0, 0.3 * period);
        let mut engine = DeltaEngine::with_variant(config, Variant::Hybrid).unwrap();
        let report = engine.full_screen(&pop);
        assert!(report.conjunction_count() >= 1, "t = 0 crossing in window");

        let mut catalog = Catalog::new();
        catalog.add(0, pop[0]).unwrap();
        catalog.add(1, pop[1]).unwrap();
        let dt = 0.4 * period;
        catalog.advance_all(dt);
        let outcome = engine.advance_window(catalog.elements(), dt).unwrap();
        assert!(outcome.retired >= 1, "the t = 0 conjunction must retire");
        // The tail screen ran the filter chain; the engine reports it.
        assert_eq!(engine.last_variant(), Some("hybrid"));
        assert!(engine.last_filter_stats().is_some());
        let live = engine.conjunctions();
        assert!(
            live.iter()
                .any(|c| { c.pair() == (0, 1) && (c.tca - (0.5 * period - dt)).abs() < 2.0 }),
            "T/2 encounter expected in {live:?}"
        );
    }
}
