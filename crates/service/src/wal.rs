//! Append-only write-ahead log of catalog/engine mutations.
//!
//! Every state-mutating request the daemon acknowledges (ADD / UPDATE /
//! REMOVE / SCREEN / DELTA / ADVANCE) is first appended here as one
//! JSON line, flushed and fsynced, so a crash after the acknowledgement
//! cannot lose it. Each line is a self-validating frame:
//!
//! ```text
//! {"seq":12,"len":34,"sum":9837134134,"body":"{\"cmd\":\"ADD\",...}"}
//! ```
//!
//! `seq` is a strictly increasing record number, `len` the byte length of
//! `body`, and `sum` a MurmurHash3 checksum of the body bytes. Replay
//! ([`read_wal`]) accepts the longest valid prefix: the first frame that
//! fails length/checksum/JSON validation — or breaks the sequence order —
//! ends the replay, which is exactly the torn-tail semantics an
//! append-only log needs (a crash mid-`write` damages only the tail).

use crate::error::PersistError;
use crate::fault::FaultPlan;
use crate::proto::Request;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Checksum seed: any fixed value works, it only has to match on replay.
const CHECKSUM_SEED: u32 = 0x5eed_cafe;

/// MurmurHash3-based content checksum used by WAL frames and snapshots.
pub fn checksum(bytes: &[u8]) -> u64 {
    kessler_grid::murmur::murmur3_x64_128(bytes, CHECKSUM_SEED).0
}

/// One framed line: a checksummed, length-tagged payload.
#[derive(Debug, Serialize, Deserialize)]
struct Frame {
    seq: u64,
    len: usize,
    sum: u64,
    body: String,
}

/// Encode `body` into one frame line (no trailing newline).
pub fn encode_frame(seq: u64, body: &str) -> String {
    let frame = Frame {
        seq,
        len: body.len(),
        sum: checksum(body.as_bytes()),
        body: body.to_string(),
    };
    serde_json::to_string(&frame).expect("frame of valid strings always serializes")
}

/// Decode one frame line, validating length and checksum.
pub fn decode_frame(line: &str) -> Result<(u64, String), PersistError> {
    let frame: Frame = serde_json::from_str(line)
        .map_err(|e| PersistError::corrupt("wal frame", format!("unparseable frame: {e}")))?;
    if frame.body.len() != frame.len {
        return Err(PersistError::corrupt(
            "wal frame",
            format!(
                "length mismatch: frame says {} bytes, body has {}",
                frame.len,
                frame.body.len()
            ),
        ));
    }
    let sum = checksum(frame.body.as_bytes());
    if sum != frame.sum {
        return Err(PersistError::corrupt(
            "wal frame",
            format!(
                "checksum mismatch: frame says {:#x}, body hashes to {sum:#x}",
                frame.sum
            ),
        ));
    }
    Ok((frame.seq, frame.body))
}

/// What [`read_wal`] recovered.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Valid records in order: `(seq, request)`.
    pub records: Vec<(u64, Request)>,
    /// `Some(detail)` when replay stopped before the end of the file
    /// (torn tail, corrupt record, or sequence regression).
    pub torn: Option<String>,
}

/// Read a WAL file, tolerating a damaged tail. A missing file is an
/// empty log; any I/O error other than NotFound is surfaced.
///
/// Lines are streamed through a [`BufReader`] rather than slurped into
/// one string — replay memory stays one record, not the whole log, no
/// matter how long the daemon ran since the last compaction.
pub fn read_wal(path: &Path) -> Result<WalReplay, PersistError> {
    let file = match File::open(path) {
        Ok(file) => file,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(err) => return Err(PersistError::io(format!("open {}", path.display()), err)),
    };
    let mut replay = WalReplay::default();
    let mut last_seq = 0u64;
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = match line {
            Ok(line) => line,
            // A read error mid-file is indistinguishable from tail damage
            // for replay purposes, but it is an I/O failure, not a torn
            // write — surface it rather than silently truncating history.
            Err(err) => return Err(PersistError::io(format!("read {}", path.display()), err)),
        };
        if line.is_empty() {
            continue;
        }
        let line = line.as_str();
        let (seq, body) = match decode_frame(line) {
            Ok(decoded) => decoded,
            Err(detail) => {
                replay.torn = Some(format!("record {}: {detail}", lineno + 1));
                break;
            }
        };
        if seq <= last_seq {
            replay.torn = Some(format!(
                "record {}: sequence went backwards ({seq} after {last_seq})",
                lineno + 1
            ));
            break;
        }
        let request: Request = match serde_json::from_str(&body) {
            Ok(request) => request,
            Err(err) => {
                replay.torn = Some(format!("record {}: bad request body: {err}", lineno + 1));
                break;
            }
        };
        last_seq = seq;
        replay.records.push((seq, request));
    }
    Ok(replay)
}

/// Append handle on a WAL file. Every append is flushed and fsynced
/// before it returns, so an acknowledged record survives a crash.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    faults: Arc<FaultPlan>,
}

impl WalWriter {
    pub fn open_append(path: &Path) -> Result<WalWriter, PersistError> {
        WalWriter::open_append_with(path, FaultPlan::inert())
    }

    /// Like [`WalWriter::open_append`], with a fault plan the writer
    /// consults on every fsync (an inert plan costs one atomic load).
    pub fn open_append_with(
        path: &Path,
        faults: Arc<FaultPlan>,
    ) -> Result<WalWriter, PersistError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| PersistError::io(format!("open {} for append", path.display()), e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            faults,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current byte length of the log, so a caller can capture a rollback
    /// point before an append.
    pub fn len(&self) -> Result<u64, PersistError> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| PersistError::io(format!("stat {}", self.path.display()), e))
    }

    /// True when the log holds no bytes.
    pub fn is_empty(&self) -> Result<bool, PersistError> {
        Ok(self.len()? == 0)
    }

    /// Truncate the log back to `len` bytes and sync, undoing the bytes
    /// of a failed append so no residue of an unacknowledged record
    /// survives a crash.
    pub fn truncate_to(&mut self, len: u64) -> Result<(), PersistError> {
        let context = || format!("truncate {}", self.path.display());
        self.file
            .set_len(len)
            .map_err(|e| PersistError::io(context(), e))?;
        self.file
            .sync_data()
            .map_err(|e| PersistError::io(context(), e))
    }

    /// Append one record durably.
    pub fn append(&mut self, seq: u64, request: &Request) -> Result<(), PersistError> {
        let body = serde_json::to_string(request)
            .map_err(|e| PersistError::corrupt("wal record", format!("unserializable: {e}")))?;
        let mut line = encode_frame(seq, &body);
        line.push('\n');
        self.write_bytes(line.as_bytes())
    }

    /// Fault injection: append only the first half of the record's bytes
    /// (no newline), as a crash mid-`write` would leave the file, while
    /// still reporting success to the caller.
    pub fn append_torn(&mut self, seq: u64, request: &Request) -> Result<(), PersistError> {
        let body = serde_json::to_string(request)
            .map_err(|e| PersistError::corrupt("wal record", format!("unserializable: {e}")))?;
        let line = encode_frame(seq, &body);
        let half = line.len() / 2;
        self.write_bytes(&line.as_bytes()[..half])
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        let context = || format!("append to {}", self.path.display());
        self.file
            .write_all(bytes)
            .map_err(|e| PersistError::io(context(), e))?;
        self.file
            .flush()
            .map_err(|e| PersistError::io(context(), e))?;
        if let Some(err) = self.faults.take_wal_fsync_error() {
            // The record's bytes already landed; failing here models the
            // kernel refusing to make them durable.
            return Err(PersistError::io(context(), err));
        }
        self.file
            .sync_data()
            .map_err(|e| PersistError::io(context(), e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ElementsSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("kessler-wal-{tag}-{}-{n}.log", std::process::id()))
    }

    fn spec() -> ElementsSpec {
        ElementsSpec {
            a: 7_000.0,
            e: 0.001,
            incl: 0.9,
            raan: 1.0,
            argp: 0.3,
            mean_anomaly: 0.2,
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_corruption() {
        let body = r#"{"cmd":"SCREEN"}"#;
        let line = encode_frame(7, body);
        let (seq, back) = decode_frame(&line).expect("valid frame");
        assert_eq!(seq, 7);
        assert_eq!(back, body);

        // Flip one payload byte: the checksum must catch it.
        let tampered = line.replace("SCREEN", "SCREEM");
        assert!(decode_frame(&tampered).is_err());
        // Truncate: unparseable.
        assert!(decode_frame(&line[..line.len() / 2]).is_err());
    }

    #[test]
    fn wal_roundtrips_records_in_order() {
        let path = temp_wal("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open_append(&path).unwrap();
        let records = [
            Request::Add {
                id: 1,
                elements: spec(),
            },
            Request::Screen,
            Request::Advance { dt: 60.0 },
        ];
        for (i, r) in records.iter().enumerate() {
            writer.append(i as u64 + 1, r).unwrap();
        }
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn.is_none(), "{:?}", replay.torn);
        assert_eq!(replay.records.len(), 3);
        for (i, (seq, r)) in replay.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(r, &records[i]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let path = temp_wal("torn");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open_append(&path).unwrap();
        writer
            .append(
                1,
                &Request::Add {
                    id: 1,
                    elements: spec(),
                },
            )
            .unwrap();
        writer.append(2, &Request::Screen).unwrap();
        writer.append_torn(3, &Request::Remove { id: 1 }).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.torn.is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_mid_file_stops_replay_there() {
        let path = temp_wal("midcorrupt");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open_append(&path).unwrap();
        for seq in 1..=4u64 {
            writer.append(seq, &Request::Screen).unwrap();
        }
        drop(writer);
        // Damage record 2 in place.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = lines[1].replace("SCREEN", "SCREAM");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records.len(), 1, "only the prefix before the damage");
        assert!(replay.torn.is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_to_rolls_back_a_partial_append() {
        let path = temp_wal("rollback");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open_append(&path).unwrap();
        writer.append(1, &Request::Screen).unwrap();
        let pre_len = writer.len().unwrap();
        writer.append_torn(2, &Request::Screen).unwrap();
        assert!(writer.len().unwrap() > pre_len);
        writer.truncate_to(pre_len).unwrap();
        assert_eq!(writer.len().unwrap(), pre_len);

        // The log is clean again: the next append lands on a valid tail.
        writer.append(2, &Request::Delta).unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn.is_none(), "{:?}", replay.torn);
        assert_eq!(replay.records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_fsync_failure_surfaces_as_an_io_error() {
        let path = temp_wal("fsyncfault");
        let _ = std::fs::remove_file(&path);
        let faults = FaultPlan::inert();
        faults.arm_wal_fsync_fail();
        let mut writer = WalWriter::open_append_with(&path, Arc::clone(&faults)).unwrap();
        let err = writer.append(1, &Request::Screen).expect_err("fsync fault");
        assert!(err.to_string().contains("append to"), "{err}");
        // One-shot: the next append succeeds.
        writer.append(1, &Request::Screen).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = temp_wal("missing");
        let _ = std::fs::remove_file(&path);
        let replay = read_wal(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.torn.is_none());
    }
}
