//! The execution layer: snapshot-isolated screening jobs.
//!
//! Screening requests are *captured* into a [`ScreenJob`] under the state
//! lock — an immutable [`CatalogSnapshot`] plus the warm conjunction set
//! and change list as of that epoch — then *run* lock-free on a worker
//! thread via [`run_screen_job`], and finally *committed* back under the
//! lock, latest-epoch-wins. The synchronous [`crate::server::ServiceState`]
//! path runs the exact same capture → run → commit sequence inline, which
//! is what makes a pool of concurrent workers observationally equivalent
//! to the old single serialized worker at matching epochs. Adopted
//! commits are also the publication point for `SUBSCRIBE` push streams:
//! the daemon layer diffs the warm pair set against its last published
//! baseline right where a screen or advance lands, so subscribers see
//! exactly the committed transitions, in commit order.
//!
//! Cancellation rides along as a [`CancelToken`] checked at phase
//! boundaries inside the job functions; the [`CancelRegistry`] maps live
//! client-supplied request ids to tokens so a `CANCEL <id>` from any
//! connection can trip a job that another connection enqueued.

use crate::catalog::CatalogSnapshot;
use crate::delta::{
    advance_window_job, delta_screen_job, full_screen_job, pairs_from_conjunctions, AdvanceFold,
    AdvanceOutcome, PairMap, Pipeline,
};
use crate::error::ServiceError;
use crate::shard::ShardScreenStats;
use kessler_core::cancel::{CancelToken, Cancelled};
use kessler_core::conjunction::ScreeningReport;
use kessler_core::timing::PhaseTimings;
use kessler_core::FilterStatsSnapshot;
use kessler_orbits::KeplerElements;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// What kind of screening work a job carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScreenKind {
    /// Cold full screen of the whole snapshot.
    Full,
    /// Delta re-screen of the changed satellites (cold fallback: full).
    Delta,
    /// Slide the window forward by `dt` seconds.
    Advance { dt: f64 },
}

/// A screening job captured at one catalog epoch. Everything a worker
/// needs, immutable; running it never touches live state.
pub struct ScreenJob {
    pub kind: ScreenKind,
    /// Catalog state as of the capture epoch.
    pub snapshot: CatalogSnapshot,
    /// Dense indices changed since the last adopted screen, as captured.
    pub changed: Vec<u32>,
    /// Warm maintained set at capture; `None` while the engine was cold.
    pub warm: Option<Arc<PairMap>>,
    /// The engine's screening pipeline (variant + validated config).
    pub pipeline: Pipeline,
}

impl ScreenJob {
    /// The catalog epoch this job's snapshot was captured at.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch
    }
}

/// What a completed job hands back for commit.
pub enum ScreenOutput {
    /// A full or delta screen: the report to answer with plus the merged
    /// pair map to adopt. The report is boxed to keep the enum small
    /// enough to pass by value through the worker channel.
    Screen {
        report: Box<ScreeningReport>,
        pairs: PairMap,
        /// Per-shard extraction stats; `Some` iff the pipeline is sharded.
        shards: Option<ShardScreenStats>,
    },
    /// A window advance: the slid pair map, retire/discover counts, the
    /// tail screen's timings and filter stats (hybrid pipelines), and
    /// which pre-screen was folded in.
    Advance {
        pairs: PairMap,
        outcome: AdvanceOutcome,
        timings: PhaseTimings,
        filter_stats: Option<FilterStatsSnapshot>,
        dt: f64,
        fold: AdvanceFold,
    },
}

/// Run a captured job to completion (or to the next phase boundary after
/// `cancel` trips). Pure: reads only the job, mutates nothing shared.
pub fn run_screen_job(
    job: &ScreenJob,
    cancel: Option<&CancelToken>,
) -> Result<ScreenOutput, Cancelled> {
    let elements: &[KeplerElements] = &job.snapshot.elements;
    match job.kind {
        ScreenKind::Full => {
            let (report, shards) = full_screen_job(&job.pipeline, elements, cancel)?;
            let pairs = pairs_from_conjunctions(&report.conjunctions);
            Ok(ScreenOutput::Screen {
                report: Box::new(report),
                pairs,
                shards,
            })
        }
        ScreenKind::Delta => match &job.warm {
            // Cold fallback, same as `DeltaEngine::delta_screen`.
            None => {
                let (report, shards) = full_screen_job(&job.pipeline, elements, cancel)?;
                let pairs = pairs_from_conjunctions(&report.conjunctions);
                Ok(ScreenOutput::Screen {
                    report: Box::new(report),
                    pairs,
                    shards,
                })
            }
            Some(warm) => {
                let (report, pairs, shards) =
                    delta_screen_job(&job.pipeline, elements, &job.changed, warm, cancel)?;
                Ok(ScreenOutput::Screen {
                    report: Box::new(report),
                    pairs,
                    shards,
                })
            }
        },
        ScreenKind::Advance { dt } => {
            // Bring the maintained set current at the captured epoch, the
            // way the synchronous ADVANCE arm does before sliding.
            let (pairs, fold) = match &job.warm {
                None => {
                    let (report, _shards) = full_screen_job(&job.pipeline, elements, cancel)?;
                    (
                        pairs_from_conjunctions(&report.conjunctions),
                        AdvanceFold::Full,
                    )
                }
                Some(warm) if !job.changed.is_empty() => {
                    let (_, pairs, _shards) =
                        delta_screen_job(&job.pipeline, elements, &job.changed, warm, cancel)?;
                    (pairs, AdvanceFold::Delta)
                }
                Some(warm) => ((**warm).clone(), AdvanceFold::None),
            };

            // Advance the snapshot's elements bit-identically to
            // `Catalog::advance_all`: absolute propagation from the stored
            // epoch-0 base to `time + dt`.
            let time = job.snapshot.time + dt;
            let advanced: Vec<KeplerElements> = elements
                .iter()
                .zip(job.snapshot.base_elements.iter())
                .map(|(el, base)| {
                    let mut advanced = *el;
                    advanced.mean_anomaly = base.mean_anomaly_at(time);
                    advanced
                })
                .collect();
            let (pairs, outcome, timings, filter_stats) =
                advance_window_job(&job.pipeline, &advanced, dt, pairs, cancel)?;
            Ok(ScreenOutput::Advance {
                pairs,
                outcome,
                timings,
                filter_stats,
                dt,
                fold,
            })
        }
    }
}

struct CancelEntry {
    req_id: Option<String>,
    token: CancelToken,
}

#[derive(Default)]
struct RegistryInner {
    next_seq: u64,
    live: HashMap<u64, CancelEntry>,
    by_req_id: HashMap<String, u64>,
}

/// Tracks every queued or running screening job's cancellation token,
/// keyed by an internal sequence number and, when the client supplied one,
/// by request id — so `CANCEL <id>` from any connection reaches the job.
#[derive(Default)]
pub struct CancelRegistry {
    inner: Mutex<RegistryInner>,
}

impl CancelRegistry {
    pub fn new() -> CancelRegistry {
        CancelRegistry::default()
    }

    /// Register a job about to be enqueued; returns its sequence number
    /// and a fresh token. A `req_id` that is still live is rejected —
    /// ids must be unique among queued/running jobs so CANCEL is
    /// unambiguous.
    pub fn register(&self, req_id: Option<&str>) -> Result<(u64, CancelToken), ServiceError> {
        let mut inner = self.inner.lock();
        if let Some(id) = req_id {
            if inner.by_req_id.contains_key(id) {
                return Err(ServiceError::DuplicateRequest {
                    req_id: id.to_string(),
                });
            }
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let token = CancelToken::new();
        inner.live.insert(
            seq,
            CancelEntry {
                req_id: req_id.map(str::to_string),
                token: token.clone(),
            },
        );
        if let Some(id) = req_id {
            inner.by_req_id.insert(id.to_string(), seq);
        }
        Ok((seq, token))
    }

    /// Drop a finished (or never-enqueued) job's entry, freeing its
    /// req_id for reuse.
    pub fn unregister(&self, seq: u64) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.live.remove(&seq) {
            if let Some(id) = entry.req_id {
                inner.by_req_id.remove(&id);
            }
        }
    }

    /// Trip the token of the live job with this request id. `false` if no
    /// such job is queued or running.
    pub fn cancel(&self, req_id: &str) -> bool {
        let inner = self.inner.lock();
        match inner.by_req_id.get(req_id) {
            Some(seq) => {
                inner.live[seq].token.cancel();
                true
            }
            None => false,
        }
    }

    /// Trip every live token (server shutdown).
    pub fn cancel_all(&self) {
        let inner = self.inner.lock();
        for entry in inner.live.values() {
            entry.token.cancel();
        }
    }

    /// Number of queued or running jobs.
    pub fn live_jobs(&self) -> usize {
        self.inner.lock().live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::delta::{sorted_conjunctions, DeltaEngine};
    use kessler_core::ScreeningConfig;
    use kessler_population::{PopulationConfig, PopulationGenerator};

    fn warm_setup(n: usize, seed: u64) -> (Catalog, DeltaEngine, ScreeningConfig) {
        let pop = PopulationGenerator::new(PopulationConfig {
            seed,
            ..Default::default()
        })
        .generate(n);
        let mut catalog = Catalog::new();
        for (i, el) in pop.iter().enumerate() {
            catalog.add(i as u64, *el).unwrap();
        }
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let engine = DeltaEngine::new(config).unwrap();
        (catalog, engine, config)
    }

    fn capture(kind: ScreenKind, catalog: &Catalog, engine: &DeltaEngine) -> ScreenJob {
        ScreenJob {
            kind,
            snapshot: catalog.snapshot(),
            changed: Vec::new(),
            warm: engine.is_warm().then(|| engine.warm_pairs()),
            pipeline: *engine.pipeline(),
        }
    }

    #[test]
    fn full_job_matches_the_sync_engine() {
        let (catalog, mut engine, _) = warm_setup(120, 5);
        let job = capture(ScreenKind::Full, &catalog, &engine);
        let ScreenOutput::Screen { report, pairs, .. } = run_screen_job(&job, None).unwrap() else {
            panic!("full job must yield a screen output");
        };
        let sync = engine.full_screen(catalog.elements());
        assert_eq!(report.conjunction_count(), sync.conjunction_count());
        assert_eq!(sorted_conjunctions(&pairs), engine.conjunctions());
    }

    #[test]
    fn advance_job_matches_the_sync_path_and_reports_its_fold() {
        let (mut catalog, mut engine, _) = warm_setup(120, 6);
        engine.full_screen(catalog.elements());
        let dt = 30.0;
        let job = capture(ScreenKind::Advance { dt }, &catalog, &engine);
        let ScreenOutput::Advance {
            pairs,
            outcome,
            fold,
            ..
        } = run_screen_job(&job, None).unwrap()
        else {
            panic!("advance job must yield an advance output");
        };
        assert_eq!(fold, AdvanceFold::None);

        catalog.advance_all(dt);
        let sync = engine.advance_window(catalog.elements(), dt).unwrap();
        assert_eq!(outcome, sync);
        assert_eq!(sorted_conjunctions(&pairs), engine.conjunctions());
    }

    #[test]
    fn cold_advance_job_folds_a_full_screen() {
        let (catalog, engine, _) = warm_setup(60, 7);
        let job = capture(ScreenKind::Advance { dt: 10.0 }, &catalog, &engine);
        let ScreenOutput::Advance { fold, .. } = run_screen_job(&job, None).unwrap() else {
            panic!("advance job must yield an advance output");
        };
        assert_eq!(fold, AdvanceFold::Full);
    }

    #[test]
    fn tripped_token_cancels_a_job() {
        let (catalog, engine, _) = warm_setup(60, 8);
        let job = capture(ScreenKind::Full, &catalog, &engine);
        let token = CancelToken::new();
        token.cancel();
        assert!(run_screen_job(&job, Some(&token)).is_err());
    }

    #[test]
    fn registry_registers_cancels_and_unregisters() {
        let registry = CancelRegistry::new();
        let (seq, token) = registry.register(Some("job-1")).unwrap();
        assert_eq!(registry.live_jobs(), 1);
        assert!(!token.is_cancelled());
        assert!(registry.cancel("job-1"));
        assert!(token.is_cancelled());
        assert!(!registry.cancel("no-such-job"));
        registry.unregister(seq);
        assert_eq!(registry.live_jobs(), 0);
        // The id is free again once the job is gone.
        registry.register(Some("job-1")).unwrap();
    }

    #[test]
    fn duplicate_live_req_ids_are_rejected() {
        let registry = CancelRegistry::new();
        registry.register(Some("dup")).unwrap();
        let err = registry.register(Some("dup")).unwrap_err();
        assert!(
            matches!(&err, ServiceError::DuplicateRequest { req_id } if req_id == "dup"),
            "{err}"
        );
        assert!(err.to_string().contains("duplicate req_id"), "{err}");
        // Anonymous jobs never collide.
        registry.register(None).unwrap();
        registry.register(None).unwrap();
    }

    #[test]
    fn cancel_all_trips_every_live_token() {
        let registry = CancelRegistry::new();
        let (_, t1) = registry.register(Some("a")).unwrap();
        let (_, t2) = registry.register(None).unwrap();
        registry.cancel_all();
        assert!(t1.is_cancelled() && t2.is_cancelled());
    }
}
