//! Sliding-window screening loop.
//!
//! A service does not screen one fixed `[0, span]` interval: operationally
//! the horizon slides forward with wall time. [`SlidingWindow`] keeps a
//! [`DeltaEngine`] warm over a window of fixed length, and on each advance
//! retires conjunctions that slid out of the window, carries live ones
//! forward, and screens only the freshly exposed tail — O(tail) work
//! instead of a full-window re-screen.
//!
//! Elements are kept at the *original* epoch and re-propagated to each new
//! window start through the exact two-body mean-anomaly advance, so
//! repeated advances accumulate no numerical drift.
//!
//! The daemon's [`crate::catalog::Catalog`] uses the same epoch-0
//! re-propagation scheme for its `advance_all` (with per-satellite bases
//! that rebase on UPDATE, since a mutable catalog — unlike this fixed
//! population — receives elements mid-flight). This type remains the
//! standalone, fixed-population driver for batch window studies; the
//! daemon composes catalog + [`DeltaEngine`] directly.

use crate::delta::{AdvanceOutcome, DeltaEngine};
use crate::error::ServiceError;
use kessler_core::{Conjunction, ScreeningConfig};
use kessler_orbits::KeplerElements;

/// A screening window of fixed length sliding over absolute time.
pub struct SlidingWindow {
    engine: DeltaEngine,
    /// Elements at absolute epoch 0.
    epoch0: Vec<KeplerElements>,
    /// Absolute window start, seconds past epoch 0.
    start: f64,
    advances: u64,
}

impl SlidingWindow {
    /// Screen the initial window `[0, config.span_seconds]`.
    pub fn new(
        config: ScreeningConfig,
        population: &[KeplerElements],
    ) -> Result<SlidingWindow, ServiceError> {
        let mut engine = DeltaEngine::new(config)?;
        engine.full_screen(population);
        Ok(SlidingWindow {
            engine,
            epoch0: population.to_vec(),
            start: 0.0,
            advances: 0,
        })
    }

    /// `(start, end)` of the current window in absolute seconds.
    pub fn window(&self) -> (f64, f64) {
        (self.start, self.start + self.engine.config().span_seconds)
    }

    pub fn advances(&self) -> u64 {
        self.advances
    }

    /// Live conjunctions with **absolute** TCAs, sorted by pair then TCA.
    pub fn live(&self) -> Vec<Conjunction> {
        let mut all = self.engine.conjunctions();
        for c in &mut all {
            c.tca += self.start;
        }
        all
    }

    /// Slide the window forward by `dt > 0` seconds.
    pub fn advance(&mut self, dt: f64) -> Result<AdvanceOutcome, ServiceError> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(ServiceError::InvalidRequest(format!(
                "advance dt must be positive and finite, got {dt}"
            )));
        }
        let new_start = self.start + dt;
        let advanced: Vec<KeplerElements> = self
            .epoch0
            .iter()
            .map(|el| {
                let mut moved = *el;
                moved.mean_anomaly = el.mean_anomaly_at(new_start);
                moved
            })
            .collect();
        let outcome = self.engine.advance_window(&advanced, dt)?;
        self.start = new_start;
        self.advances += 1;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossing_pair() -> Vec<KeplerElements> {
        vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ]
    }

    #[test]
    fn window_slides_and_tracks_recurring_encounters() {
        // Same-period crossing orbits meet every half period: encounters at
        // t ≈ 0, T/2, T, …
        let pop = crossing_pair();
        let period = pop[0].period();
        let config = ScreeningConfig::grid_defaults(2.0, 0.3 * period);
        let mut window = SlidingWindow::new(config, &pop).unwrap();
        assert_eq!(window.window().0, 0.0);
        let live = window.live();
        assert!(
            live.iter().any(|c| c.tca.abs() < 2.0),
            "t = 0 encounter expected in {live:?}"
        );

        // [0.4 T, 0.7 T]: t = 0 retired, T/2 discovered; TCAs are absolute.
        let outcome = window.advance(0.4 * period).unwrap();
        assert!(outcome.retired >= 1);
        let live = window.live();
        assert!(
            live.iter().any(|c| (c.tca - 0.5 * period).abs() < 2.0),
            "T/2 encounter expected in {live:?}"
        );
        assert!(live.iter().all(|c| c.tca >= window.window().0 - 1e-9));

        // [0.9 T, 1.2 T]: T/2 retired, T discovered.
        let outcome = window.advance(0.5 * period).unwrap();
        assert!(outcome.retired >= 1);
        let live = window.live();
        assert!(
            live.iter().any(|c| (c.tca - period).abs() < 2.0),
            "T encounter expected in {live:?}"
        );
        assert_eq!(window.advances(), 2);
    }

    #[test]
    fn quiet_window_stays_empty() {
        // Distant orbits: no encounters, ever.
        let pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(9_000.0, 0.0, 1.2, 1.0, 0.0, 2.0).unwrap(),
        ];
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let mut window = SlidingWindow::new(config, &pop).unwrap();
        assert!(window.live().is_empty());
        let outcome = window.advance(300.0).unwrap();
        assert_eq!(
            outcome,
            AdvanceOutcome {
                retired: 0,
                discovered: 0
            }
        );
        assert_eq!(window.window(), (300.0, 900.0));
    }

    #[test]
    fn bad_dt_is_rejected() {
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let mut window = SlidingWindow::new(config, &crossing_pair()).unwrap();
        assert!(window.advance(0.0).is_err());
        assert!(window.advance(f64::INFINITY).is_err());
    }
}
