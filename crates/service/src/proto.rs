//! JSON-lines wire protocol.
//!
//! One JSON object per line in each direction. Requests carry a `"cmd"`
//! tag; responses always carry `"ok"` plus a command-specific payload
//! field. Everything rides on `serde_json` and std TCP — no framing
//! library, no async runtime — so `nc` is a perfectly good client:
//!
//! ```text
//! $ nc 127.0.0.1 7878
//! {"cmd":"ADD","id":42,"elements":{"a":7000.0,"e":0.001,"incl":0.9,"raan":1.0,"argp":0.3,"mean_anomaly":0.2}}
//! {"ok":true,"catalog":{"id":42,"index":0,"n_satellites":1,"epoch":1}}
//! {"cmd":"SCREEN"}
//! {"ok":true,"screen":{"variant":"grid","n_satellites":1,...}}
//! ```
//!
//! Every request may additionally carry a client-chosen `"req_id"` string
//! (see [`Envelope`]); the response echoes it, and `CANCEL <req_id>`
//! aborts the matching queued or in-flight screening job. Screen
//! responses carry the catalog `epoch` their snapshot was captured at and
//! a `stale` flag set when a newer result was adopted first.

use crate::error::ServiceError;
use crate::shard::ShardScreenStats;
use kessler_core::metrics::HistogramSummary;
use kessler_core::timing::PhaseTimings;
use kessler_core::{Conjunction, FilterStatsSnapshot, ScreeningReport};
use kessler_orbits::KeplerElements;
use serde::{Deserialize, Serialize};

/// How many worst-case (smallest-PCA) conjunctions a screen response
/// carries inline; the full set stays server-side.
pub const TOP_CONJUNCTIONS: usize = 16;

/// Orbital elements as they appear on the wire: km and radians.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElementsSpec {
    /// Semi-major axis, km.
    pub a: f64,
    /// Eccentricity.
    pub e: f64,
    /// Inclination, rad.
    pub incl: f64,
    /// Right ascension of the ascending node, rad.
    pub raan: f64,
    /// Argument of perigee, rad.
    pub argp: f64,
    /// Mean anomaly at epoch, rad.
    pub mean_anomaly: f64,
}

impl ElementsSpec {
    /// Validate into proper elements (the server never stores unvalidated
    /// client input).
    pub fn into_elements(self) -> Result<KeplerElements, ServiceError> {
        KeplerElements::new(
            self.a,
            self.e,
            self.incl,
            self.raan,
            self.argp,
            self.mean_anomaly,
        )
        .map_err(|e| ServiceError::InvalidElements(e.to_string()))
    }

    pub fn from_elements(el: &KeplerElements) -> ElementsSpec {
        ElementsSpec {
            a: el.semi_major_axis,
            e: el.eccentricity,
            incl: el.inclination,
            raan: el.raan,
            argp: el.arg_perigee,
            mean_anomaly: el.mean_anomaly,
        }
    }
}

/// Client → server commands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "cmd")]
pub enum Request {
    /// Insert a new satellite under a stable external id.
    #[serde(rename = "ADD")]
    Add { id: u64, elements: ElementsSpec },
    /// Replace the elements of an existing satellite.
    #[serde(rename = "UPDATE")]
    Update { id: u64, elements: ElementsSpec },
    /// Remove a satellite.
    #[serde(rename = "REMOVE")]
    Remove { id: u64 },
    /// Cold full screen of the current catalog.
    #[serde(rename = "SCREEN")]
    Screen,
    /// Delta re-screen of satellites changed since the last screen.
    #[serde(rename = "DELTA")]
    Delta,
    /// Slide the screening window forward by `dt` seconds.
    #[serde(rename = "ADVANCE")]
    Advance { dt: f64 },
    /// Service status and last-screen timings.
    #[serde(rename = "STATUS")]
    Status,
    /// Rolling metrics: per-phase quantiles, durability latencies,
    /// request counters.
    #[serde(rename = "METRICS")]
    Metrics,
    /// Abort the queued or in-flight screening job whose envelope carried
    /// this `req_id`.
    #[serde(rename = "CANCEL")]
    Cancel { id: String },
    /// Register this connection for conjunction push events: either an
    /// explicit asset-id set (events involving any listed id) or `all`.
    /// The subscription lives as long as the connection does.
    #[serde(rename = "SUBSCRIBE")]
    Subscribe {
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        assets: Vec<u64>,
        #[serde(default, skip_serializing_if = "is_false")]
        all: bool,
    },
    /// Tear down one subscription by id, or every subscription on this
    /// connection when `sub_id` is omitted.
    #[serde(rename = "UNSUBSCRIBE")]
    Unsubscribe {
        #[serde(default, skip_serializing_if = "Option::is_none")]
        sub_id: Option<String>,
    },
    /// Stop the server.
    #[serde(rename = "SHUTDOWN")]
    Shutdown,
}

/// A request plus the optional client-chosen `req_id` tag, flattened on
/// the wire: `{"cmd":"SCREEN","req_id":"job-1"}`. Responses echo the id,
/// which is also the handle `CANCEL` takes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub req_id: Option<String>,
    #[serde(flatten)]
    pub request: Request,
}

impl Request {
    /// `true` for commands that mutate daemon state and therefore must be
    /// written to the WAL before they are acknowledged. SCREEN/DELTA/
    /// ADVANCE count: they move the engine's warm set and counters, which
    /// replay must reproduce.
    pub fn is_mutation(&self) -> bool {
        !matches!(
            self,
            Request::Status
                | Request::Metrics
                | Request::Cancel { .. }
                | Request::Subscribe { .. }
                | Request::Unsubscribe { .. }
                | Request::Shutdown
        )
    }

    /// The wire command word, for per-command metrics counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Add { .. } => "ADD",
            Request::Update { .. } => "UPDATE",
            Request::Remove { .. } => "REMOVE",
            Request::Screen => "SCREEN",
            Request::Delta => "DELTA",
            Request::Advance { .. } => "ADVANCE",
            Request::Status => "STATUS",
            Request::Metrics => "METRICS",
            Request::Cancel { .. } => "CANCEL",
            Request::Subscribe { .. } => "SUBSCRIBE",
            Request::Unsubscribe { .. } => "UNSUBSCRIBE",
            Request::Shutdown => "SHUTDOWN",
        }
    }
}

/// Server → client reply.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Response {
    pub ok: bool,
    /// Echo of the request's `req_id`, when the client supplied one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub req_id: Option<String>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// `true` on errors where the server guarantees the request changed
    /// nothing (degraded-mode rejection, full queue, rolled-back append):
    /// a client may retry such a request without risking a double-apply.
    #[serde(default, skip_serializing_if = "is_false")]
    pub not_applied: bool,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub catalog: Option<CatalogAck>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub screen: Option<ScreenSummary>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub advance: Option<AdvanceAck>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub status: Option<StatusInfo>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<crate::metrics::MetricsSnapshot>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub subscription: Option<SubscriptionAck>,
}

impl Response {
    pub fn ack() -> Response {
        Response {
            ok: true,
            ..Response::default()
        }
    }

    pub fn error(message: impl Into<String>) -> Response {
        Response {
            ok: false,
            error: Some(message.into()),
            ..Response::default()
        }
    }

    /// An error response that additionally guarantees the request was not
    /// applied, so the client may safely retry it.
    pub fn rejected(message: impl Into<String>) -> Response {
        Response {
            ok: false,
            error: Some(message.into()),
            not_applied: true,
            ..Response::default()
        }
    }

    pub fn with_catalog(ack: CatalogAck) -> Response {
        Response {
            ok: true,
            catalog: Some(ack),
            ..Response::default()
        }
    }

    pub fn with_screen(summary: ScreenSummary) -> Response {
        Response {
            ok: true,
            screen: Some(summary),
            ..Response::default()
        }
    }

    pub fn with_advance(ack: AdvanceAck) -> Response {
        Response {
            ok: true,
            advance: Some(ack),
            ..Response::default()
        }
    }

    pub fn with_status(status: StatusInfo) -> Response {
        Response {
            ok: true,
            status: Some(status),
            ..Response::default()
        }
    }

    pub fn with_metrics(metrics: crate::metrics::MetricsSnapshot) -> Response {
        Response {
            ok: true,
            metrics: Some(metrics),
            ..Response::default()
        }
    }

    pub fn with_subscription(ack: SubscriptionAck) -> Response {
        Response {
            ok: true,
            subscription: Some(ack),
            ..Response::default()
        }
    }
}

/// Acknowledgement of a SUBSCRIBE or UNSUBSCRIBE.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubscriptionAck {
    /// The subscription this request created or removed. On an
    /// UNSUBSCRIBE with no `sub_id` (drop everything) this is `"all"`.
    pub sub_id: String,
    /// `true` when the subscription matches every asset.
    #[serde(default, skip_serializing_if = "is_false")]
    pub all: bool,
    /// Number of asset ids the subscription filters on (0 for `all`).
    pub assets: usize,
    /// Subscriptions active on this connection after the request.
    pub active: usize,
}

/// The wire discriminator carried by every pushed event line. Responses
/// never carry a `"push"` key, so its presence alone classifies a line.
pub const PUSH_CONJUNCTION: &str = "conjunction";

/// What happened to a conjunction pair across one committed screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum EventKind {
    /// The pair entered the maintained set.
    New,
    /// The pair stayed but its conjunction geometry changed.
    Updated,
    /// The pair left the maintained set.
    Retired,
}

/// Server → subscriber push: one conjunction-pair delta event, emitted
/// when a screen commit changes the maintained pair set. Rides the same
/// JSON-lines stream as responses, distinguished by the `"push"` key
/// (see [`PUSH_CONJUNCTION`]); `id_lo`/`id_hi` are *external* asset ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PushEvent {
    /// Always [`PUSH_CONJUNCTION`] for conjunction delta events.
    pub push: String,
    /// The subscription this event matched.
    pub sub_id: String,
    pub kind: EventKind,
    /// Smaller external asset id of the pair.
    pub id_lo: u64,
    /// Larger external asset id of the pair.
    pub id_hi: u64,
    /// Time of closest approach of the pair's representative (smallest
    /// PCA) conjunction, s. For `retired`, the last known value.
    pub tca: f64,
    /// Point of closest approach of the representative conjunction, km.
    pub pca_km: f64,
    /// Conjunction events the pair has in the new maintained set
    /// (0 for `retired`).
    pub conjunctions: usize,
    /// Catalog epoch of the screen that produced the event.
    pub epoch: u64,
    /// `true` when the event came from a degraded-mode (ephemeral)
    /// screen: it describes the current catalog but was not adopted as
    /// the warm set and will not survive a restart.
    #[serde(default, skip_serializing_if = "is_false")]
    pub ephemeral: bool,
}

/// Acknowledgement of a catalog mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogAck {
    /// External id the command addressed.
    pub id: u64,
    /// Dense index the satellite occupies (for REMOVE: occupied).
    pub index: u32,
    /// Catalog size after the mutation.
    pub n_satellites: usize,
    /// Catalog epoch after the mutation.
    pub epoch: u64,
}

/// Summary of a SCREEN/DELTA run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScreenSummary {
    pub variant: String,
    pub n_satellites: usize,
    pub candidate_pairs: usize,
    pub conjunctions: usize,
    pub colliding_pairs: usize,
    /// Per-phase wall times, fractional milliseconds on the wire.
    pub timings: PhaseTimings,
    /// The up-to-[`TOP_CONJUNCTIONS`] smallest-PCA conjunctions.
    pub top: Vec<Conjunction>,
    /// Catalog epoch the screen's snapshot was captured at.
    #[serde(default)]
    pub epoch: u64,
    /// `true` when a result for a newer epoch was adopted before this one
    /// committed; the payload still describes the captured epoch, but the
    /// daemon's maintained set was not replaced by it.
    #[serde(default)]
    pub stale: bool,
    /// Orbital filter-chain counters, present on hybrid screens only.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub filter_stats: Option<FilterStatsSnapshot>,
    /// `true` when the screen ran in degraded mode: the result describes
    /// the current catalog but was not adopted as the warm set and will
    /// not survive a restart.
    #[serde(default, skip_serializing_if = "is_false")]
    pub ephemeral: bool,
    /// Per-shard extraction breakdown, present when the daemon screens
    /// with a sharded pipeline.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shards: Option<ShardSummary>,
}

fn is_false(flag: &bool) -> bool {
    !*flag
}

impl ScreenSummary {
    pub fn from_report(report: &ScreeningReport) -> ScreenSummary {
        let mut top: Vec<Conjunction> = report.conjunctions.clone();
        top.sort_by(|a, b| a.pca_km.total_cmp(&b.pca_km));
        top.truncate(TOP_CONJUNCTIONS);
        ScreenSummary {
            variant: report.variant.clone(),
            n_satellites: report.n_satellites,
            candidate_pairs: report.candidate_pairs,
            conjunctions: report.conjunction_count(),
            colliding_pairs: report.colliding_pairs().len(),
            timings: report.timings,
            top,
            epoch: 0,
            stale: false,
            filter_stats: report.filter_stats,
            ephemeral: false,
            shards: None,
        }
    }
}

/// Compact wire form of one screen's per-shard extraction stats: one row
/// per *occupied* shard (empty shards carry no information), plus the
/// boundary-mirroring counters that price the cross-shard machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Total shards in the partition (occupied or not).
    pub shard_count: u32,
    /// Candidate entries whose two satellites live in different home
    /// shards — the pairs mirroring exists to keep.
    pub boundary_entries: u64,
    /// Grid inserts beyond one-per-satellite-per-step (the mirror copies).
    pub mirrored_inserts: u64,
    /// Total grid inserts across shards and steps.
    pub total_inserts: u64,
    /// Per-occupied-shard rows, ascending by shard id.
    pub rows: Vec<ShardRow>,
}

/// One occupied shard's extraction stats for a single screen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRow {
    pub shard: u32,
    /// Candidate entries this shard's queries emitted.
    pub entries: u64,
    /// Peak member count across steps (mirrors included).
    pub peak_members: u64,
    /// Per-step extraction wall time, µs.
    pub step_us: HistogramSummary,
}

impl ShardSummary {
    pub fn from_stats(stats: &ShardScreenStats) -> ShardSummary {
        let rows = (0..stats.shard_count())
            .filter(|&s| stats.peak_members[s] > 0)
            .map(|s| ShardRow {
                shard: s as u32,
                entries: stats.entries[s],
                peak_members: stats.peak_members[s],
                step_us: stats.step_us[s].summary(1.0),
            })
            .collect();
        ShardSummary {
            shard_count: stats.shard_count() as u32,
            boundary_entries: stats.boundary_entries,
            mirrored_inserts: stats.mirrored_inserts,
            total_inserts: stats.total_inserts,
            rows,
        }
    }
}

/// Acknowledgement of an ADVANCE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvanceAck {
    /// Conjunctions that slid out of the window.
    pub retired: usize,
    /// New conjunctions discovered in the exposed tail.
    pub discovered: usize,
    /// Absolute `(start, end)` of the window after the advance, s.
    pub window: (f64, f64),
}

/// STATUS payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusInfo {
    pub n_satellites: usize,
    /// Screening variant the daemon serves with ("grid" or "hybrid").
    /// Empty on payloads from servers predating the field.
    #[serde(default)]
    pub variant: String,
    /// Catalog mutation epoch.
    pub epoch: u64,
    /// Satellites changed since the last screen (what DELTA would process).
    pub pending_changes: usize,
    /// Conjunctions in the maintained set.
    pub live_conjunctions: usize,
    pub full_screens: u64,
    pub delta_screens: u64,
    /// Requests served since startup (all commands).
    pub requests_served: u64,
    pub uptime_ms: f64,
    /// Absolute `(start, end)` of the current screening window, s.
    pub window: (f64, f64),
    /// Variant and per-phase timings of the most recent screen, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub last_screen: Option<LastScreen>,
    /// `true` when this process restored catalog state from a snapshot
    /// and/or WAL tail rather than starting empty.
    #[serde(default)]
    pub recovered: bool,
    /// Operating mode: `"normal"`, or `"degraded"` while persistence is
    /// down and mutations are being rejected. Empty on payloads from
    /// servers predating the field, and on ephemeral (no-persistence)
    /// daemons it is always `"normal"`.
    #[serde(default)]
    pub mode: String,
    /// One-line metrics digest (full METRICS payload via the METRICS verb).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<String>,
}

/// Per-request observability hook: what the previous screen cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LastScreen {
    pub variant: String,
    pub timings: PhaseTimings,
    /// Filter-chain counters of that screen (hybrid only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub filter_stats: Option<FilterStatsSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_json() {
        let spec = ElementsSpec {
            a: 7_000.0,
            e: 0.001,
            incl: 0.9,
            raan: 1.0,
            argp: 0.3,
            mean_anomaly: 0.2,
        };
        let requests = vec![
            Request::Add {
                id: 42,
                elements: spec,
            },
            Request::Update {
                id: 42,
                elements: spec,
            },
            Request::Remove { id: 42 },
            Request::Screen,
            Request::Delta,
            Request::Advance { dt: 60.0 },
            Request::Status,
            Request::Metrics,
            Request::Cancel {
                id: "job-1".to_string(),
            },
            Request::Subscribe {
                assets: vec![42, 99],
                all: false,
            },
            Request::Subscribe {
                assets: Vec::new(),
                all: true,
            },
            Request::Unsubscribe {
                sub_id: Some("sub-1".to_string()),
            },
            Request::Unsubscribe { sub_id: None },
            Request::Shutdown,
        ];
        for req in requests {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "json: {json}");
        }
    }

    #[test]
    fn request_tag_is_the_command_word() {
        let json = serde_json::to_string(&Request::Screen).unwrap();
        assert_eq!(json, r#"{"cmd":"SCREEN"}"#);
        let req: Request = serde_json::from_str(r#"{"cmd":"ADVANCE","dt":30.0}"#).unwrap();
        assert_eq!(req, Request::Advance { dt: 30.0 });
    }

    #[test]
    fn envelopes_flatten_over_requests_and_default_req_id() {
        // No req_id on the wire: plain request, nothing extra serialized.
        let env: Envelope = serde_json::from_str(r#"{"cmd":"SCREEN"}"#).unwrap();
        assert_eq!(env.req_id, None);
        assert_eq!(env.request, Request::Screen);
        let json = serde_json::to_string(&env).unwrap();
        assert_eq!(json, r#"{"cmd":"SCREEN"}"#);
        // Tagged request round-trips with payload fields intact.
        let env = Envelope {
            req_id: Some("job-1".to_string()),
            request: Request::Advance { dt: 30.0 },
        };
        let json = serde_json::to_string(&env).unwrap();
        let back: Envelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env, "json: {json}");
        // req_id order on the wire does not matter.
        let back: Envelope =
            serde_json::from_str(r#"{"cmd":"CANCEL","id":"job-1","req_id":"c-9"}"#).unwrap();
        assert_eq!(back.req_id.as_deref(), Some("c-9"));
        assert_eq!(
            back.request,
            Request::Cancel {
                id: "job-1".to_string()
            }
        );
    }

    #[test]
    fn responses_echo_req_ids_only_when_present() {
        let mut resp = Response::ack();
        resp.req_id = Some("job-1".to_string());
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(json, r#"{"ok":true,"req_id":"job-1"}"#);
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back.req_id.as_deref(), Some("job-1"));
    }

    #[test]
    fn screen_summaries_default_epoch_and_stale_for_old_payloads() {
        let summary = ScreenSummary {
            variant: "grid".to_string(),
            n_satellites: 1,
            candidate_pairs: 0,
            conjunctions: 0,
            colliding_pairs: 0,
            timings: PhaseTimings::default(),
            top: Vec::new(),
            epoch: 9,
            stale: true,
            filter_stats: None,
            ephemeral: false,
            shards: None,
        };
        let mut value = serde_json::to_value(&summary).unwrap();
        let obj = value.as_object_mut().unwrap();
        obj.remove("epoch");
        obj.remove("stale");
        let back: ScreenSummary = serde_json::from_value(value).unwrap();
        assert_eq!(back.epoch, 0);
        assert!(!back.stale);
        assert!(back.filter_stats.is_none());
    }

    #[test]
    fn filter_stats_and_variant_fields_roundtrip_and_default() {
        let stats = FilterStatsSnapshot {
            tested: 10,
            excluded_apsis: 3,
            excluded_path: 2,
            excluded_time: 1,
            coplanar: 1,
            kept: 3,
        };
        let summary = ScreenSummary {
            variant: "hybrid".to_string(),
            n_satellites: 4,
            candidate_pairs: 6,
            conjunctions: 1,
            colliding_pairs: 1,
            timings: PhaseTimings::default(),
            top: Vec::new(),
            epoch: 2,
            stale: false,
            filter_stats: Some(stats),
            ephemeral: false,
            shards: None,
        };
        let json = serde_json::to_string(&summary).unwrap();
        let back: ScreenSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.filter_stats, Some(stats), "json: {json}");

        let last = LastScreen {
            variant: "hybrid".to_string(),
            timings: PhaseTimings::default(),
            filter_stats: Some(stats),
        };
        let json = serde_json::to_string(&last).unwrap();
        let back: LastScreen = serde_json::from_str(&json).unwrap();
        assert_eq!(back.filter_stats, Some(stats), "json: {json}");
        // Absent on the wire (grid screens, old servers) → None/empty.
        let grid_last = LastScreen {
            variant: "grid".to_string(),
            timings: PhaseTimings::default(),
            filter_stats: None,
        };
        let json = serde_json::to_string(&grid_last).unwrap();
        assert!(!json.contains("filter_stats"), "json: {json}");
        let back: LastScreen = serde_json::from_str(&json).unwrap();
        assert!(back.filter_stats.is_none());
        let status_json = r#"{"n_satellites":1,"epoch":1,"pending_changes":0,
            "live_conjunctions":0,"full_screens":0,"delta_screens":0,
            "requests_served":0,"uptime_ms":0.0,"window":[0.0,1.0]}"#;
        let back: StatusInfo = serde_json::from_str(status_json).unwrap();
        assert_eq!(back.variant, "", "pre-variant payloads default to empty");
        assert_eq!(back.mode, "", "pre-mode payloads default to empty");
    }

    #[test]
    fn not_applied_and_ephemeral_are_omitted_when_false() {
        // A plain error carries no not_applied key; a rejection does.
        let json = serde_json::to_string(&Response::error("nope")).unwrap();
        assert!(!json.contains("not_applied"), "json: {json}");
        let rejected = Response::rejected("service degraded (read-only): disk gone");
        assert!(!rejected.ok && rejected.not_applied);
        let json = serde_json::to_string(&rejected).unwrap();
        assert!(json.contains(r#""not_applied":true"#), "json: {json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert!(back.not_applied);
        // Old servers never send the key: it defaults to false.
        let back: Response = serde_json::from_str(r#"{"ok":false,"error":"x"}"#).unwrap();
        assert!(!back.not_applied);

        let mut summary = ScreenSummary {
            variant: "grid".to_string(),
            n_satellites: 1,
            candidate_pairs: 0,
            conjunctions: 0,
            colliding_pairs: 0,
            timings: PhaseTimings::default(),
            top: Vec::new(),
            epoch: 1,
            stale: false,
            filter_stats: None,
            ephemeral: false,
            shards: None,
        };
        let json = serde_json::to_string(&summary).unwrap();
        assert!(!json.contains("ephemeral"), "json: {json}");
        summary.ephemeral = true;
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains(r#""ephemeral":true"#), "json: {json}");
        let back: ScreenSummary = serde_json::from_str(&json).unwrap();
        assert!(back.ephemeral);
    }

    #[test]
    fn responses_omit_empty_payloads() {
        let json = serde_json::to_string(&Response::ack()).unwrap();
        assert_eq!(json, r#"{"ok":true}"#);
        let json = serde_json::to_string(&Response::error("nope")).unwrap();
        assert_eq!(json, r#"{"ok":false,"error":"nope"}"#);
        let back: Response = serde_json::from_str(r#"{"ok":true}"#).unwrap();
        assert!(back.ok && back.error.is_none() && back.screen.is_none());
    }

    #[test]
    fn every_response_payload_roundtrips() {
        let conj = Conjunction {
            id_lo: 1,
            id_hi: 2,
            tca: 120.5,
            pca_km: 3.25,
        };
        let payloads = vec![
            Response::with_catalog(CatalogAck {
                id: 42,
                index: 0,
                n_satellites: 1,
                epoch: 1,
            }),
            Response::with_screen(ScreenSummary {
                variant: "grid".to_string(),
                n_satellites: 100,
                candidate_pairs: 12,
                conjunctions: 3,
                colliding_pairs: 2,
                timings: PhaseTimings::default(),
                top: vec![conj],
                epoch: 5,
                stale: false,
                filter_stats: None,
                ephemeral: false,
                shards: None,
            }),
            Response::with_advance(AdvanceAck {
                retired: 2,
                discovered: 1,
                window: (60.0, 660.0),
            }),
            Response::with_status(StatusInfo {
                n_satellites: 100,
                variant: "grid".to_string(),
                epoch: 7,
                pending_changes: 3,
                live_conjunctions: 5,
                full_screens: 1,
                delta_screens: 4,
                requests_served: 9,
                uptime_ms: 1234.5,
                window: (0.0, 600.0),
                last_screen: Some(LastScreen {
                    variant: "grid-delta".to_string(),
                    timings: PhaseTimings::default(),
                    filter_stats: None,
                }),
                recovered: true,
                mode: "normal".to_string(),
                metrics: Some("no screens yet; queue hw 0".to_string()),
            }),
            Response::with_metrics(crate::metrics::MetricsSnapshot::default()),
        ];
        for response in payloads {
            let json = serde_json::to_string(&response).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(back.ok, response.ok);
            assert_eq!(back.catalog, response.catalog, "json: {json}");
            assert_eq!(
                back.screen
                    .as_ref()
                    .map(|s| (&s.variant, s.conjunctions, s.top.clone())),
                response
                    .screen
                    .as_ref()
                    .map(|s| (&s.variant, s.conjunctions, s.top.clone())),
                "json: {json}"
            );
            assert_eq!(back.advance, response.advance, "json: {json}");
            assert_eq!(
                back.status
                    .as_ref()
                    .map(|s| (s.n_satellites, s.epoch, s.window)),
                response
                    .status
                    .as_ref()
                    .map(|s| (s.n_satellites, s.epoch, s.window)),
                "json: {json}"
            );
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        // Not JSON at all.
        assert!(serde_json::from_str::<Request>("nonsense {{{").is_err());
        // Valid JSON, no cmd tag.
        assert!(serde_json::from_str::<Request>(r#"{"id":1}"#).is_err());
        // Unknown command word.
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"NOPE"}"#).is_err());
        // Known command, missing required field.
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"ADD","id":1}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"ADVANCE"}"#).is_err());
        // Wrong field type.
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"REMOVE","id":"x"}"#).is_err());
    }

    #[test]
    fn mutations_are_exactly_the_wal_worthy_commands() {
        let spec = ElementsSpec {
            a: 7_000.0,
            e: 0.0,
            incl: 0.0,
            raan: 0.0,
            argp: 0.0,
            mean_anomaly: 0.0,
        };
        assert!(Request::Add {
            id: 1,
            elements: spec
        }
        .is_mutation());
        assert!(Request::Update {
            id: 1,
            elements: spec
        }
        .is_mutation());
        assert!(Request::Remove { id: 1 }.is_mutation());
        assert!(Request::Screen.is_mutation());
        assert!(Request::Delta.is_mutation());
        assert!(Request::Advance { dt: 1.0 }.is_mutation());
        assert!(!Request::Status.is_mutation());
        assert!(!Request::Metrics.is_mutation());
        assert!(!Request::Cancel {
            id: "job-1".to_string()
        }
        .is_mutation());
        assert!(!Request::Subscribe {
            assets: vec![1],
            all: false
        }
        .is_mutation());
        assert!(!Request::Unsubscribe { sub_id: None }.is_mutation());
        assert!(!Request::Shutdown.is_mutation());
    }

    #[test]
    fn subscribe_requests_default_their_optional_fields() {
        // Bare SUBSCRIBE parses (the server rejects it semantically).
        let req: Request = serde_json::from_str(r#"{"cmd":"SUBSCRIBE"}"#).unwrap();
        assert_eq!(
            req,
            Request::Subscribe {
                assets: Vec::new(),
                all: false
            }
        );
        // `all` subscriptions serialize without an empty assets array.
        let json = serde_json::to_string(&Request::Subscribe {
            assets: Vec::new(),
            all: true,
        })
        .unwrap();
        assert_eq!(json, r#"{"cmd":"SUBSCRIBE","all":true}"#);
        // UNSUBSCRIBE without sub_id drops everything on the connection.
        let req: Request = serde_json::from_str(r#"{"cmd":"UNSUBSCRIBE"}"#).unwrap();
        assert_eq!(req, Request::Unsubscribe { sub_id: None });
        assert_eq!(req.kind(), "UNSUBSCRIBE");
        assert_eq!(
            Request::Subscribe {
                assets: Vec::new(),
                all: true
            }
            .kind(),
            "SUBSCRIBE"
        );
    }

    #[test]
    fn subscription_acks_ride_responses() {
        let resp = Response::with_subscription(SubscriptionAck {
            sub_id: "sub-1".to_string(),
            all: false,
            assets: 2,
            active: 1,
        });
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back.subscription, resp.subscription, "json: {json}");
        // Plain responses carry no subscription key (old-client safe).
        let json = serde_json::to_string(&Response::ack()).unwrap();
        assert!(!json.contains("subscription"), "json: {json}");
    }

    #[test]
    fn push_events_roundtrip_and_are_distinguishable_from_responses() {
        let event = PushEvent {
            push: PUSH_CONJUNCTION.to_string(),
            sub_id: "sub-1".to_string(),
            kind: EventKind::New,
            id_lo: 42,
            id_hi: 99,
            tca: 120.5,
            pca_km: 3.25,
            conjunctions: 2,
            epoch: 7,
            ephemeral: false,
        };
        let json = serde_json::to_string(&event).unwrap();
        assert!(json.contains(r#""push":"conjunction""#), "json: {json}");
        assert!(json.contains(r#""kind":"new""#), "json: {json}");
        assert!(!json.contains("ephemeral"), "json: {json}");
        let back: PushEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
        // Push lines carry no "ok" field, so they never parse as a
        // Response — a client reading the stream cannot confuse the two.
        assert!(serde_json::from_str::<Response>(&json).is_err());
        // And responses never parse as pushes.
        let resp_json = serde_json::to_string(&Response::ack()).unwrap();
        assert!(serde_json::from_str::<PushEvent>(&resp_json).is_err());

        let mut tagged = event.clone();
        tagged.kind = EventKind::Retired;
        tagged.conjunctions = 0;
        tagged.ephemeral = true;
        let json = serde_json::to_string(&tagged).unwrap();
        assert!(json.contains(r#""kind":"retired""#), "json: {json}");
        assert!(json.contains(r#""ephemeral":true"#), "json: {json}");
        let back: PushEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tagged);
    }

    #[test]
    fn kind_matches_the_wire_tag() {
        for req in [Request::Screen, Request::Metrics, Request::Shutdown] {
            let json = serde_json::to_string(&req).unwrap();
            assert!(
                json.contains(&format!(r#""cmd":"{}""#, req.kind())),
                "json: {json}"
            );
        }
        assert_eq!(Request::Advance { dt: 1.0 }.kind(), "ADVANCE");
    }

    #[test]
    fn elements_spec_validates() {
        let bad = ElementsSpec {
            a: -1.0,
            e: 0.0,
            incl: 0.0,
            raan: 0.0,
            argp: 0.0,
            mean_anomaly: 0.0,
        };
        assert!(bad.into_elements().is_err());
        let good = ElementsSpec {
            a: 7_000.0,
            e: 0.0,
            incl: 0.0,
            raan: 0.0,
            argp: 0.0,
            mean_anomaly: 0.0,
        };
        let el = good.into_elements().unwrap();
        assert_eq!(ElementsSpec::from_elements(&el), good);
    }
}
