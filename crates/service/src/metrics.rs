//! Rolling service metrics: per-phase screening histograms, durability
//! latencies, request/error counters, queue pressure.
//!
//! The daemon previously surfaced only the *last* screen's
//! [`PhaseTimings`] via STATUS; this registry keeps the full distribution
//! (p50/p90/p99 over every screen since startup) per phase, tracked
//! separately for full and delta screens — the operational counterpart of
//! the paper's §V-C.1 per-phase breakdowns. It also times every WAL fsync
//! and snapshot write, counts requests and errors per command, and records
//! screening-queue pressure and worker respawns. A [`MetricsSnapshot`] is
//! served verbatim by the `METRICS` protocol verb.

use kessler_core::metrics::{Histogram, HistogramSummary, PhaseSeries, PhaseSummaries};
use kessler_core::timing::PhaseTimings;
use kessler_core::FilterStatsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Microseconds (histogram unit) to milliseconds (wire unit).
const US_TO_MS: f64 = 1e-3;

/// Ok/error counts for one request kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestCounter {
    pub ok: u64,
    pub errors: u64,
}

/// In-memory rolling metrics; lives behind the server's metrics mutex.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Phase distributions over cold full screens (SCREEN and cold DELTA).
    full: PhaseSeries,
    /// Phase distributions over warm delta screens.
    delta: PhaseSeries,
    /// Tail-screen distributions from ADVANCE window slides.
    advance: PhaseSeries,
    /// WAL append (write + flush + fsync) latency, µs.
    wal_fsync: Histogram,
    /// Snapshot write + rotate + WAL-compaction duration, µs.
    snapshot_write: Histogram,
    /// Snapshot sizes on disk, bytes.
    snapshot_bytes: Histogram,
    /// Snapshot-capture (catalog snapshot + warm-set handle) duration, µs.
    snapshot_build: Histogram,
    /// Per-worker screening-job wall times, µs, keyed by worker name.
    worker_jobs: BTreeMap<String, Histogram>,
    /// Per-command ok/error counts.
    requests: BTreeMap<String, RequestCounter>,
    /// Deepest the screening queue has been.
    queue_highwater: usize,
    /// Times the supervisor respawned a dead screening worker.
    worker_respawns: u64,
    /// Jobs cancelled via CANCEL (queued or mid-screen).
    jobs_cancelled: u64,
    /// WAL appends that failed (each one rejects a mutation).
    wal_append_failures: u64,
    /// Snapshot writes that failed (retried on the next mutation).
    snapshot_failures: u64,
    /// Transitions into degraded (read-only) mode.
    degraded_entries: u64,
    /// Recoveries back to normal mode (emergency snapshot succeeded).
    degraded_recoveries: u64,
    /// Persistence probes that failed while degraded.
    probe_failures: u64,
    /// Running totals over every hybrid screen's filter-chain counters;
    /// `None` until the first hybrid screen.
    filter_chain: Option<FilterStatsSnapshot>,
    /// Per-shard extraction-step latencies over sharded full screens, µs,
    /// keyed by shard id. Only shards that held satellites appear.
    shard_full: BTreeMap<u32, Histogram>,
    /// Same, over sharded delta screens.
    shard_delta: BTreeMap<u32, Histogram>,
    /// Dirty-shard count at each successful snapshot write — how
    /// incremental the per-shard snapshots actually are.
    dirty_shards: Histogram,
    /// Candidate entries whose neighbour lives in another shard (pairs
    /// that only exist because of boundary mirroring).
    boundary_entries: u64,
    /// Grid inserts beyond one-per-satellite: boundary mirrors copied
    /// into neighbouring shards' grids.
    mirrored_inserts: u64,
    /// Conjunction push events queued to subscriber connections.
    events_pushed: u64,
    /// Push events shed because a subscriber's write buffer sat at the
    /// high-water mark (or the connection vanished mid-publish).
    events_dropped: u64,
    /// Connections dropped for letting responses pile past the hard cap.
    slow_consumer_disconnects: u64,
    /// Per-connection write-buffer high-water marks, bytes, recorded as
    /// each connection closes.
    write_buffer_peak: Histogram,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Record one screen's phase breakdown under its report variant
    /// (`"grid-delta"`/`"hybrid-delta"` → delta series, anything else →
    /// full series).
    pub fn record_screen(&mut self, variant: &str, timings: &PhaseTimings) {
        if variant == crate::delta::DELTA_VARIANT || variant == crate::delta::HYBRID_DELTA_VARIANT {
            self.delta.record(timings);
        } else {
            self.full.record(timings);
        }
    }

    /// Fold one hybrid screen's filter-chain counters into the running
    /// totals.
    pub fn record_filter_chain(&mut self, stats: &FilterStatsSnapshot) {
        let total = self.filter_chain.get_or_insert(FilterStatsSnapshot {
            tested: 0,
            excluded_apsis: 0,
            excluded_path: 0,
            excluded_time: 0,
            coplanar: 0,
            kept: 0,
        });
        total.tested += stats.tested;
        total.excluded_apsis += stats.excluded_apsis;
        total.excluded_path += stats.excluded_path;
        total.excluded_time += stats.excluded_time;
        total.coplanar += stats.coplanar;
        total.kept += stats.kept;
    }

    /// Record the tail screen an ADVANCE ran while sliding the window.
    pub fn record_advance_tail(&mut self, timings: &PhaseTimings) {
        self.advance.record(timings);
    }

    /// Fold one sharded screen's per-shard extraction stats into the
    /// registry. Empty shards (no satellites, no steps) stay absent so the
    /// METRICS payload lists only occupied shards.
    pub fn record_shard_screen(&mut self, is_delta: bool, stats: &crate::shard::ShardScreenStats) {
        let series = if is_delta {
            &mut self.shard_delta
        } else {
            &mut self.shard_full
        };
        for (shard, hist) in stats.step_us.iter().enumerate() {
            if hist.is_empty() {
                continue;
            }
            series.entry(shard as u32).or_default().merge(hist);
        }
        self.boundary_entries += stats.boundary_entries;
        self.mirrored_inserts += stats.mirrored_inserts;
    }

    /// Record how many shard chunks a snapshot write had to rewrite.
    pub fn record_dirty_shards(&mut self, dirtied: usize) {
        self.dirty_shards.record(dirtied as u64);
    }

    pub fn record_wal_fsync(&mut self, elapsed: Duration) {
        self.wal_fsync.record_duration(elapsed);
    }

    pub fn record_snapshot(&mut self, elapsed: Duration, bytes: u64) {
        self.snapshot_write.record_duration(elapsed);
        self.snapshot_bytes.record(bytes);
    }

    /// Time spent capturing a screening job under the state lock — the
    /// price every enqueue pays, and the cost the copy-on-write snapshot
    /// design is supposed to keep near zero.
    pub fn record_snapshot_build(&mut self, elapsed: Duration) {
        self.snapshot_build.record_duration(elapsed);
    }

    /// One screening job's wall time on the named worker.
    pub fn record_worker_job(&mut self, worker: &str, elapsed: Duration) {
        self.worker_jobs
            .entry(worker.to_string())
            .or_default()
            .record_duration(elapsed);
    }

    /// Count one request by command word.
    pub fn count_request(&mut self, kind: &str, ok: bool) {
        let counter = self.requests.entry(kind.to_string()).or_default();
        if ok {
            counter.ok += 1;
        } else {
            counter.errors += 1;
        }
    }

    /// Note the screening-queue depth observed after an enqueue.
    pub fn note_queue_depth(&mut self, depth: usize) {
        self.queue_highwater = self.queue_highwater.max(depth);
    }

    pub fn note_respawn(&mut self) {
        self.worker_respawns += 1;
    }

    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns
    }

    /// Count one cancelled screening job (queued or mid-screen).
    pub fn note_cancelled(&mut self) {
        self.jobs_cancelled += 1;
    }

    pub fn jobs_cancelled(&self) -> u64 {
        self.jobs_cancelled
    }

    /// Count one failed WAL append (the mutation it carried was rejected).
    pub fn note_wal_append_failure(&mut self) {
        self.wal_append_failures += 1;
    }

    /// Count one failed snapshot write.
    pub fn note_snapshot_failure(&mut self) {
        self.snapshot_failures += 1;
    }

    /// Count one transition into degraded (read-only) mode.
    pub fn note_degraded_entry(&mut self) {
        self.degraded_entries += 1;
    }

    /// Count one recovery back to normal mode.
    pub fn note_degraded_recovery(&mut self) {
        self.degraded_recoveries += 1;
    }

    /// Count one failed persistence probe while degraded.
    pub fn note_probe_failure(&mut self) {
        self.probe_failures += 1;
    }

    /// Count push events queued to subscriber connections.
    pub fn note_events_pushed(&mut self, n: u64) {
        self.events_pushed += n;
    }

    /// Count push events shed under backpressure.
    pub fn note_events_dropped(&mut self, n: u64) {
        self.events_dropped += n;
    }

    /// Count one connection dropped for consuming responses too slowly.
    pub fn note_slow_consumer_disconnect(&mut self) {
        self.slow_consumer_disconnects += 1;
    }

    /// Record a closing connection's write-buffer high-water mark.
    pub fn record_write_buffer_peak(&mut self, bytes: u64) {
        self.write_buffer_peak.record(bytes);
    }

    /// Point-in-time JSON-ready digest (the METRICS payload).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            full_screens: (!self.full.is_empty()).then(|| self.full.summaries()),
            delta_screens: (!self.delta.is_empty()).then(|| self.delta.summaries()),
            advance_tails: (!self.advance.is_empty()).then(|| self.advance.summaries()),
            wal_fsync_ms: (!self.wal_fsync.is_empty()).then(|| self.wal_fsync.summary(US_TO_MS)),
            snapshot_write_ms: (!self.snapshot_write.is_empty())
                .then(|| self.snapshot_write.summary(US_TO_MS)),
            snapshot_bytes: (!self.snapshot_bytes.is_empty())
                .then(|| self.snapshot_bytes.summary(1.0)),
            snapshot_build_ms: (!self.snapshot_build.is_empty())
                .then(|| self.snapshot_build.summary(US_TO_MS)),
            worker_screen_ms: self
                .worker_jobs
                .iter()
                .filter(|(_, h)| !h.is_empty())
                .map(|(name, h)| (name.clone(), h.summary(US_TO_MS)))
                .collect(),
            requests: self.requests.clone(),
            queue_highwater: self.queue_highwater,
            worker_respawns: self.worker_respawns,
            jobs_cancelled: self.jobs_cancelled,
            wal_append_failures: self.wal_append_failures,
            snapshot_failures: self.snapshot_failures,
            degraded_entries: self.degraded_entries,
            degraded_recoveries: self.degraded_recoveries,
            probe_failures: self.probe_failures,
            filter_chain: self.filter_chain,
            shard_full_step_us: self
                .shard_full
                .iter()
                .map(|(shard, h)| (*shard, h.summary(1.0)))
                .collect(),
            shard_delta_step_us: self
                .shard_delta
                .iter()
                .map(|(shard, h)| (*shard, h.summary(1.0)))
                .collect(),
            dirty_shards_per_snapshot: (!self.dirty_shards.is_empty())
                .then(|| self.dirty_shards.summary(1.0)),
            boundary_entries: self.boundary_entries,
            mirrored_inserts: self.mirrored_inserts,
            // A registry only counts; the daemon layer overwrites this
            // with the live subscription count when serving METRICS.
            subscribers: 0,
            events_pushed: self.events_pushed,
            events_dropped: self.events_dropped,
            slow_consumer_disconnects: self.slow_consumer_disconnects,
            write_buffer_peak_bytes: (!self.write_buffer_peak.is_empty())
                .then(|| self.write_buffer_peak.summary(1.0)),
        }
    }

    /// One-line digest for STATUS and the periodic `--metrics-every` log.
    pub fn one_line(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if !self.full.is_empty() {
            parts.push(format!(
                "full p50/p99 {:.1}/{:.1}ms ×{}",
                self.full.total.p50() as f64 * US_TO_MS,
                self.full.total.p99() as f64 * US_TO_MS,
                self.full.count()
            ));
        }
        if !self.delta.is_empty() {
            parts.push(format!(
                "delta p50/p99 {:.1}/{:.1}ms ×{}",
                self.delta.total.p50() as f64 * US_TO_MS,
                self.delta.total.p99() as f64 * US_TO_MS,
                self.delta.count()
            ));
        }
        if !self.wal_fsync.is_empty() {
            parts.push(format!(
                "wal fsync p99 {:.2}ms",
                self.wal_fsync.p99() as f64 * US_TO_MS
            ));
        }
        if !self.shard_full.is_empty() || !self.shard_delta.is_empty() {
            let occupied: std::collections::BTreeSet<u32> = self
                .shard_full
                .keys()
                .chain(self.shard_delta.keys())
                .copied()
                .collect();
            parts.push(format!(
                "shards {} occupied, boundary {}, mirrored {}",
                occupied.len(),
                self.boundary_entries,
                self.mirrored_inserts
            ));
        }
        if parts.is_empty() {
            parts.push("no screens yet".to_string());
        }
        let errors: u64 = self.requests.values().map(|c| c.errors).sum();
        parts.push(format!(
            "queue hw {}, respawns {}, cancelled {}, errors {}",
            self.queue_highwater, self.worker_respawns, self.jobs_cancelled, errors
        ));
        // Push traffic only shows up once someone subscribed, keeping the
        // request/response-only digest unchanged.
        if self.events_pushed + self.events_dropped + self.slow_consumer_disconnects > 0 {
            parts.push(format!(
                "pushed {}, shed {}, slow-consumer drops {}",
                self.events_pushed, self.events_dropped, self.slow_consumer_disconnects
            ));
        }
        // Persistence trouble is rare; mention it only once it happened so
        // the healthy digest stays short.
        if self.wal_append_failures + self.snapshot_failures + self.degraded_entries > 0 {
            parts.push(format!(
                "wal fails {}, snap fails {}, degraded {}/{} recovered",
                self.wal_append_failures,
                self.snapshot_failures,
                self.degraded_recoveries,
                self.degraded_entries
            ));
        }
        parts.join("; ")
    }
}

/// Serialized METRICS payload: quantile digests (milliseconds for times)
/// plus counters. Empty histograms are omitted rather than zero-filled.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Per-phase quantiles over full screens.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub full_screens: Option<PhaseSummaries>,
    /// Per-phase quantiles over delta screens.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub delta_screens: Option<PhaseSummaries>,
    /// Per-phase quantiles over ADVANCE tail screens.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub advance_tails: Option<PhaseSummaries>,
    /// WAL append (fsync) latency quantiles, ms.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub wal_fsync_ms: Option<HistogramSummary>,
    /// Snapshot write duration quantiles, ms.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub snapshot_write_ms: Option<HistogramSummary>,
    /// Snapshot size quantiles, bytes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub snapshot_bytes: Option<HistogramSummary>,
    /// Screening-job capture (snapshot build) quantiles, ms.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub snapshot_build_ms: Option<HistogramSummary>,
    /// Per-worker screening-job wall-time quantiles, ms.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub worker_screen_ms: BTreeMap<String, HistogramSummary>,
    /// Ok/error counts per command word.
    #[serde(default)]
    pub requests: BTreeMap<String, RequestCounter>,
    /// Screening-queue depth high-water mark.
    #[serde(default)]
    pub queue_highwater: usize,
    /// Screening workers respawned after dying.
    #[serde(default)]
    pub worker_respawns: u64,
    /// Screening jobs cancelled via CANCEL (queued or mid-screen).
    #[serde(default)]
    pub jobs_cancelled: u64,
    /// WAL appends that failed (each rejected one mutation).
    #[serde(default)]
    pub wal_append_failures: u64,
    /// Snapshot writes that failed (retried on the next mutation).
    #[serde(default)]
    pub snapshot_failures: u64,
    /// Transitions into degraded (read-only) mode.
    #[serde(default)]
    pub degraded_entries: u64,
    /// Recoveries back to normal mode.
    #[serde(default)]
    pub degraded_recoveries: u64,
    /// Persistence probes that failed while degraded.
    #[serde(default)]
    pub probe_failures: u64,
    /// Summed filter-chain counters over all hybrid screens since startup.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub filter_chain: Option<FilterStatsSnapshot>,
    /// Per-shard extraction-step quantiles over sharded full screens, µs.
    /// Only shards that held satellites appear.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub shard_full_step_us: BTreeMap<u32, HistogramSummary>,
    /// Per-shard extraction-step quantiles over sharded delta screens, µs.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub shard_delta_step_us: BTreeMap<u32, HistogramSummary>,
    /// Dirty-shard counts across snapshot writes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dirty_shards_per_snapshot: Option<HistogramSummary>,
    /// Cross-shard candidate entries found via boundary mirroring.
    #[serde(default)]
    pub boundary_entries: u64,
    /// Satellites mirrored into neighbouring shards' grids.
    #[serde(default)]
    pub mirrored_inserts: u64,
    /// Live subscriptions at snapshot time (filled by the daemon layer).
    #[serde(default)]
    pub subscribers: usize,
    /// Conjunction push events queued to subscribers since startup.
    #[serde(default)]
    pub events_pushed: u64,
    /// Push events shed under backpressure.
    #[serde(default)]
    pub events_dropped: u64,
    /// Connections dropped for consuming responses too slowly.
    #[serde(default)]
    pub slow_consumer_disconnects: u64,
    /// Write-buffer high-water marks across closed connections, bytes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub write_buffer_peak_bytes: Option<HistogramSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{DELTA_VARIANT, HYBRID_DELTA_VARIANT};

    fn timings(ms: u64) -> PhaseTimings {
        PhaseTimings {
            insertion: Duration::from_millis(ms),
            pair_extraction: Duration::from_millis(ms),
            filters: Duration::ZERO,
            refinement: Duration::from_millis(ms),
            total: Duration::from_millis(3 * ms),
        }
    }

    #[test]
    fn screens_split_by_variant() {
        let mut m = MetricsRegistry::new();
        m.record_screen("grid", &timings(10));
        m.record_screen("grid", &timings(20));
        m.record_screen(DELTA_VARIANT, &timings(2));
        m.record_screen("hybrid", &timings(15));
        m.record_screen(HYBRID_DELTA_VARIANT, &timings(3));
        let snap = m.snapshot();
        assert_eq!(snap.full_screens.unwrap().screens, 3);
        assert_eq!(
            snap.delta_screens.unwrap().screens,
            2,
            "hybrid-delta lands in the delta series"
        );
        assert!(snap.advance_tails.is_none());
        assert!(snap.wal_fsync_ms.is_none());
    }

    #[test]
    fn filter_chain_counters_accumulate_across_screens() {
        let mut m = MetricsRegistry::new();
        assert!(
            m.snapshot().filter_chain.is_none(),
            "grid-only daemons omit it"
        );
        let stats = FilterStatsSnapshot {
            tested: 10,
            excluded_apsis: 4,
            excluded_path: 2,
            excluded_time: 1,
            coplanar: 1,
            kept: 2,
        };
        m.record_filter_chain(&stats);
        m.record_filter_chain(&stats);
        let total = m.snapshot().filter_chain.unwrap();
        assert_eq!(total.tested, 20);
        assert_eq!(total.excluded_apsis, 8);
        assert_eq!(total.kept, 4);
        let json = serde_json::to_string(&m.snapshot()).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.filter_chain, Some(total));
    }

    #[test]
    fn counters_and_highwater_accumulate() {
        let mut m = MetricsRegistry::new();
        m.count_request("ADD", true);
        m.count_request("ADD", true);
        m.count_request("ADD", false);
        m.note_queue_depth(1);
        m.note_queue_depth(5);
        m.note_queue_depth(2);
        m.note_respawn();
        m.note_cancelled();
        m.note_cancelled();
        let snap = m.snapshot();
        assert_eq!(
            snap.requests.get("ADD"),
            Some(&RequestCounter { ok: 2, errors: 1 })
        );
        assert_eq!(snap.queue_highwater, 5);
        assert_eq!(snap.worker_respawns, 1);
        assert_eq!(snap.jobs_cancelled, 2);
    }

    #[test]
    fn worker_and_capture_histograms_key_by_name() {
        let mut m = MetricsRegistry::new();
        m.record_snapshot_build(Duration::from_micros(50));
        m.record_worker_job("worker-0", Duration::from_millis(8));
        m.record_worker_job("worker-0", Duration::from_millis(12));
        m.record_worker_job("worker-1", Duration::from_millis(3));
        let snap = m.snapshot();
        assert_eq!(snap.snapshot_build_ms.unwrap().count, 1);
        assert_eq!(snap.worker_screen_ms.len(), 2);
        assert_eq!(snap.worker_screen_ms["worker-0"].count, 2);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.worker_screen_ms["worker-1"].count, 1);
    }

    #[test]
    fn shard_stats_merge_by_shard_and_roundtrip() {
        use crate::shard::ShardScreenStats;
        let mut m = MetricsRegistry::new();
        assert!(m.snapshot().shard_full_step_us.is_empty());

        let mut stats = ShardScreenStats::new(4);
        stats.step_us[0].record(100);
        stats.step_us[2].record(300);
        stats.boundary_entries = 5;
        stats.mirrored_inserts = 7;
        m.record_shard_screen(false, &stats);
        m.record_shard_screen(true, &stats);
        m.record_shard_screen(false, &stats);
        m.record_dirty_shards(3);

        let snap = m.snapshot();
        // Shards 1 and 3 never recorded a step; they must stay absent.
        assert_eq!(
            snap.shard_full_step_us.keys().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(snap.shard_full_step_us[&0].count, 2);
        assert_eq!(snap.shard_delta_step_us[&2].count, 1);
        assert_eq!(snap.boundary_entries, 15);
        assert_eq!(snap.mirrored_inserts, 21);
        assert_eq!(snap.dirty_shards_per_snapshot.unwrap().max, 3.0);

        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shard_full_step_us[&2].count, 2);
        assert_eq!(back.boundary_entries, 15);
        // Payloads from pre-sharding servers default to empty.
        let back: MetricsSnapshot = serde_json::from_str("{}").unwrap();
        assert!(back.shard_full_step_us.is_empty());
        assert_eq!(back.mirrored_inserts, 0);

        let line = m.one_line();
        assert!(line.contains("shards 2 occupied"), "{line}");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut m = MetricsRegistry::new();
        m.record_screen("grid", &timings(10));
        m.record_wal_fsync(Duration::from_micros(800));
        m.record_snapshot(Duration::from_millis(4), 12_345);
        m.count_request("SCREEN", true);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.full_screens.unwrap().screens, 1);
        let fsync = back.wal_fsync_ms.unwrap();
        assert_eq!(fsync.count, 1);
        assert!((fsync.min - 0.8).abs() < 1e-9, "{fsync:?}");
        assert_eq!(back.snapshot_bytes.unwrap().max, 12_345.0);
    }

    #[test]
    fn one_line_mentions_what_exists() {
        let mut m = MetricsRegistry::new();
        assert!(m.one_line().contains("no screens yet"));
        m.record_screen("grid", &timings(10));
        m.record_screen(DELTA_VARIANT, &timings(1));
        let line = m.one_line();
        assert!(line.contains("full"), "{line}");
        assert!(line.contains("delta"), "{line}");
        assert!(line.contains("queue hw 0"), "{line}");
        assert!(line.contains("cancelled 0"), "{line}");
        assert!(
            !line.contains("wal fails"),
            "healthy daemons omit the resilience part: {line}"
        );
    }

    #[test]
    fn push_counters_accumulate_and_roundtrip() {
        let mut m = MetricsRegistry::new();
        assert!(
            !m.one_line().contains("pushed"),
            "request/response-only daemons omit the push part"
        );
        m.note_events_pushed(5);
        m.note_events_pushed(2);
        m.note_events_dropped(1);
        m.note_slow_consumer_disconnect();
        m.record_write_buffer_peak(4096);
        m.record_write_buffer_peak(128);
        let snap = m.snapshot();
        assert_eq!(snap.events_pushed, 7);
        assert_eq!(snap.events_dropped, 1);
        assert_eq!(snap.slow_consumer_disconnects, 1);
        assert_eq!(snap.subscribers, 0, "gauge belongs to the daemon layer");
        let peaks = snap.write_buffer_peak_bytes.unwrap();
        assert_eq!(peaks.count, 2);
        assert_eq!(peaks.max, 4096.0);

        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.events_pushed, 7);
        assert_eq!(back.write_buffer_peak_bytes.unwrap().count, 2);
        // Payloads from servers predating SUBSCRIBE default to zero.
        let back: MetricsSnapshot = serde_json::from_str("{}").unwrap();
        assert_eq!(back.events_pushed, 0);
        assert!(back.write_buffer_peak_bytes.is_none());

        let line = m.one_line();
        assert!(
            line.contains("pushed 7, shed 1, slow-consumer drops 1"),
            "{line}"
        );
    }

    #[test]
    fn resilience_counters_accumulate_and_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.note_wal_append_failure();
        m.note_wal_append_failure();
        m.note_snapshot_failure();
        m.note_degraded_entry();
        m.note_probe_failure();
        m.note_probe_failure();
        m.note_probe_failure();
        m.note_degraded_recovery();
        let snap = m.snapshot();
        assert_eq!(snap.wal_append_failures, 2);
        assert_eq!(snap.snapshot_failures, 1);
        assert_eq!(snap.degraded_entries, 1);
        assert_eq!(snap.degraded_recoveries, 1);
        assert_eq!(snap.probe_failures, 3);

        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.wal_append_failures, 2);
        assert_eq!(back.probe_failures, 3);
        // Payloads from servers predating the counters default to zero.
        let back: MetricsSnapshot = serde_json::from_str("{}").unwrap();
        assert_eq!(back.wal_append_failures, 0);

        let line = m.one_line();
        assert!(line.contains("wal fails 2"), "{line}");
        assert!(line.contains("snap fails 1"), "{line}");
        assert!(line.contains("degraded 1/1 recovered"), "{line}");
    }
}
