//! JSON-lines-over-TCP conjunction-screening daemon.
//!
//! Architecture: a thread per connection parses requests; cheap catalog
//! mutations and STATUS execute inline under the state mutex, while
//! screening commands (SCREEN / DELTA / ADVANCE) are funnelled through a
//! single worker thread via a *bounded* crossbeam channel, so concurrent
//! clients cannot stampede the rayon pool — and when the queue is full,
//! clients get an explicit "server busy" error instead of unbounded
//! buffering. Shared state is a [`ServiceState`] behind a
//! `parking_lot::Mutex`.
//!
//! Crash safety: with [`ServerOptions::persist`] set, every acknowledged
//! mutation is appended to a write-ahead log *before* the response goes
//! out, and the full state is snapshotted every `snapshot_every`
//! mutations (see [`crate::persist`]). Restart recovery loads the newest
//! valid snapshot and replays the WAL tail through the same
//! [`ServiceState::handle`] path that produced it, which the delta
//! correctness invariant makes deterministic — a recovered daemon answers
//! STATUS/DELTA exactly as an uninterrupted one would.
//!
//! Panic isolation: screening runs inside `catch_unwind`, so a panic
//! mid-screen becomes an ERROR response instead of a dead worker; if the
//! worker thread dies anyway, a supervisor thread respawns it.
//!
//! Everything is std networking plus the workspace's existing concurrency
//! crates — no async runtime, no protocol framework.

use crate::catalog::Catalog;
use crate::delta::DeltaEngine;
use crate::error::ServiceError;
use crate::fault::FaultPlan;
use crate::metrics::MetricsRegistry;
use crate::persist::{PersistOptions, Persister, Snapshot, SNAPSHOT_VERSION};
use crate::proto::{
    AdvanceAck, CatalogAck, ElementsSpec, LastScreen, Request, Response, ScreenSummary, StatusInfo,
};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use kessler_core::ScreeningConfig;
use kessler_orbits::KeplerElements;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Hard cap on one request/response line, server- and client-side. A JSON
/// request is a few hundred bytes; anything near this is garbage or abuse.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Tunables for [`Server::bind_with`]. `Default` matches production use:
/// no persistence, bounded queue, generous-but-finite socket timeouts.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Enable the WAL + snapshot durability layer.
    pub persist: Option<PersistOptions>,
    /// Screening requests queued before clients get "server busy".
    pub queue_depth: usize,
    /// Per-connection read timeout (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout (`None` = wait forever).
    pub write_timeout: Option<Duration>,
    /// Per-line byte cap; oversized lines get an error response.
    pub max_line_bytes: usize,
    /// Fault-injection hooks; inert outside the crash-safety tests.
    pub faults: Arc<FaultPlan>,
    /// Log a one-line metrics digest to stderr this often (`None` = off).
    pub metrics_every: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            persist: None,
            queue_depth: 32,
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(30)),
            max_line_bytes: MAX_LINE_BYTES,
            faults: FaultPlan::inert(),
            metrics_every: None,
        }
    }
}

/// What startup recovery found in the state directory.
#[derive(Debug, Clone, Default)]
pub struct RecoverySummary {
    /// WAL seq of the snapshot the state was restored from.
    pub snapshot_seq: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// The WAL ended in a torn record (dropped; expected after a crash).
    pub torn_tail: bool,
    /// Snapshot files skipped as corrupt.
    pub corrupt_snapshots: usize,
}

/// The daemon's mutable heart: catalog + warm delta engine + change set.
pub struct ServiceState {
    catalog: Catalog,
    engine: DeltaEngine,
    /// Dense indices changed since the last screen.
    changed: BTreeSet<u32>,
    /// Absolute start of the screening window (advanced by ADVANCE).
    window_start: f64,
    requests: u64,
    started: Instant,
    /// `true` when this state came out of snapshot/WAL recovery.
    recovered: bool,
}

impl ServiceState {
    pub fn new(config: ScreeningConfig) -> Result<ServiceState, String> {
        Ok(ServiceState {
            catalog: Catalog::new(),
            engine: DeltaEngine::new(config)?,
            changed: BTreeSet::new(),
            window_start: 0.0,
            requests: 0,
            started: Instant::now(),
            recovered: false,
        })
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn engine(&self) -> &DeltaEngine {
        &self.engine
    }

    /// Capture the complete state as a snapshot covering WAL records up to
    /// `wal_seq`.
    pub fn snapshot(&self, wal_seq: u64) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            wal_seq,
            epoch: self.catalog.epoch(),
            ids: self.catalog.ids().to_vec(),
            elements: self
                .catalog
                .elements()
                .iter()
                .map(ElementsSpec::from_elements)
                .collect(),
            generations: self.catalog.generations().to_vec(),
            changed: self.changed.iter().copied().collect(),
            window_start: self.window_start,
            screened_n: self.engine.screened_n(),
            full_screens: self.engine.full_screens(),
            delta_screens: self.engine.delta_screens(),
            conjunctions: self.engine.conjunctions(),
            requests_served: self.requests,
            time: self.catalog.time(),
            base_elements: self
                .catalog
                .base_elements()
                .iter()
                .map(ElementsSpec::from_elements)
                .collect(),
            last_screen: self.last_screen_info(),
        }
    }

    /// Rebuild the state a [`ServiceState::snapshot`] captured.
    pub fn restore_from(
        config: ScreeningConfig,
        snapshot: &Snapshot,
    ) -> Result<ServiceState, ServiceError> {
        let mut elements = Vec::with_capacity(snapshot.elements.len());
        for spec in &snapshot.elements {
            elements.push(
                spec.into_elements()
                    .map_err(|e| ServiceError::Recovery(format!("snapshot elements: {e}")))?,
            );
        }
        let mut base_elements = Vec::with_capacity(snapshot.base_elements.len());
        for spec in &snapshot.base_elements {
            base_elements.push(
                spec.into_elements()
                    .map_err(|e| ServiceError::Recovery(format!("snapshot base elements: {e}")))?,
            );
        }
        let catalog = Catalog::restore(
            snapshot.epoch,
            snapshot.ids.clone(),
            elements,
            snapshot.generations.clone(),
            snapshot.time,
            base_elements,
        )
        .map_err(ServiceError::Recovery)?;
        let mut engine = DeltaEngine::restore(
            config,
            snapshot.screened_n,
            snapshot.full_screens,
            snapshot.delta_screens,
            &snapshot.conjunctions,
        )
        .map_err(ServiceError::Recovery)?;
        if let Some(last) = &snapshot.last_screen {
            engine.restore_last_timings(last.timings);
        }
        let changed: BTreeSet<u32> = snapshot
            .changed
            .iter()
            .copied()
            .filter(|&i| (i as usize) < catalog.len())
            .collect();
        Ok(ServiceState {
            catalog,
            engine,
            changed,
            window_start: snapshot.window_start,
            requests: snapshot.requests_served,
            started: Instant::now(),
            recovered: true,
        })
    }

    fn note_request(&mut self) {
        self.requests += 1;
    }

    /// Execute one request against the state. Pure request→response; all
    /// I/O lives in the connection handler.
    pub fn handle(&mut self, request: &Request) -> Response {
        self.note_request();
        match request {
            Request::Add { id, elements } => {
                let el = match elements.into_elements() {
                    Ok(el) => el,
                    Err(e) => return Response::error(e),
                };
                match self.catalog.add(*id, el) {
                    Ok(index) => {
                        self.changed.insert(index);
                        Response::with_catalog(self.catalog_ack(*id, index))
                    }
                    Err(e) => Response::error(e.to_string()),
                }
            }
            Request::Update { id, elements } => {
                let el = match elements.into_elements() {
                    Ok(el) => el,
                    Err(e) => return Response::error(e),
                };
                match self.catalog.update(*id, el) {
                    Ok(index) => {
                        self.changed.insert(index);
                        Response::with_catalog(self.catalog_ack(*id, index))
                    }
                    Err(e) => Response::error(e.to_string()),
                }
            }
            Request::Remove { id } => match self.catalog.remove(*id) {
                Ok(removal) => {
                    let new_len = self.catalog.len();
                    self.engine.apply_removal(removal, new_len);
                    // The old last index no longer exists; if a satellite
                    // moved into the hole it now needs re-screening.
                    if let Some(last) = removal.moved_from {
                        self.changed.remove(&last);
                        self.changed.insert(removal.removed_index);
                    } else {
                        self.changed.remove(&removal.removed_index);
                    }
                    self.changed.retain(|&i| (i as usize) < new_len);
                    Response::with_catalog(self.catalog_ack(*id, removal.removed_index))
                }
                Err(e) => Response::error(e.to_string()),
            },
            Request::Screen => {
                let report = self.engine.full_screen(self.catalog.elements());
                self.changed.clear();
                Response::with_screen(ScreenSummary::from_report(&report))
            }
            Request::Delta => {
                let changed: Vec<u32> = self.changed.iter().copied().collect();
                let report = self.engine.delta_screen(self.catalog.elements(), &changed);
                self.changed.clear();
                Response::with_screen(ScreenSummary::from_report(&report))
            }
            Request::Advance { dt } => {
                if !dt.is_finite() || *dt <= 0.0 {
                    return Response::error(format!(
                        "advance dt must be positive and finite, got {dt}"
                    ));
                }
                if !self.engine.is_warm() {
                    self.engine.full_screen(self.catalog.elements());
                    self.changed.clear();
                } else if !self.changed.is_empty() {
                    // Fold pending mutations in first so the carried-forward
                    // conjunction set reflects the current catalog.
                    let changed: Vec<u32> = self.changed.iter().copied().collect();
                    self.engine.delta_screen(self.catalog.elements(), &changed);
                    self.changed.clear();
                }
                self.catalog.advance_all(*dt);
                match self.engine.advance_window(self.catalog.elements(), *dt) {
                    Ok(outcome) => {
                        self.window_start += dt;
                        Response::with_advance(AdvanceAck {
                            retired: outcome.retired,
                            discovered: outcome.discovered,
                            window: self.window(),
                        })
                    }
                    Err(e) => Response::error(e),
                }
            }
            Request::Status => Response::with_status(self.status()),
            // Metrics live with the daemon (`Shared`), not the state: the
            // registry spans WAL/queue/worker concerns the state never
            // sees, and the verb must not cost the state lock. Reaching
            // this arm means a caller bypassed `handle_and_persist`.
            Request::Metrics => Response::error("METRICS is served by the daemon layer"),
            Request::Shutdown => Response::ack(),
        }
    }

    fn catalog_ack(&self, id: u64, index: u32) -> CatalogAck {
        CatalogAck {
            id,
            index,
            n_satellites: self.catalog.len(),
            epoch: self.catalog.epoch(),
        }
    }

    fn window(&self) -> (f64, f64) {
        (
            self.window_start,
            self.window_start + self.engine.config().span_seconds,
        )
    }

    /// Variant + timings of the most recent screen (STATUS and snapshots).
    fn last_screen_info(&self) -> Option<LastScreen> {
        self.engine.is_warm().then(|| LastScreen {
            variant: if self.engine.delta_screens() > 0 {
                crate::delta::DELTA_VARIANT.to_string()
            } else {
                "grid".to_string()
            },
            timings: *self.engine.last_timings(),
        })
    }

    pub fn status(&self) -> StatusInfo {
        let last_screen = self.last_screen_info();
        StatusInfo {
            n_satellites: self.catalog.len(),
            epoch: self.catalog.epoch(),
            pending_changes: self.changed.len(),
            live_conjunctions: self.engine.conjunction_count(),
            full_screens: self.engine.full_screens(),
            delta_screens: self.engine.delta_screens(),
            requests_served: self.requests,
            uptime_ms: self.started.elapsed().as_secs_f64() * 1e3,
            window: self.window(),
            last_screen,
            recovered: self.recovered,
            metrics: None, // the daemon layer fills this in
        }
    }
}

/// Work the connection threads hand to the single screening worker.
enum Job {
    Heavy {
        request: Request,
        reply: Sender<Response>,
    },
    Stop,
}

struct Shared {
    state: Mutex<ServiceState>,
    persist: Option<Mutex<Persister>>,
    /// Rolling observability counters/histograms. Lock order: always after
    /// `state` (and `persist`) — the METRICS fast path takes only this.
    metrics: Mutex<MetricsRegistry>,
    shutdown: AtomicBool,
    jobs: Sender<Job>,
    addr: SocketAddr,
    faults: Arc<FaultPlan>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    max_line_bytes: usize,
}

/// Execute a request and, if it mutated state, write it to the WAL before
/// the response escapes — the single choke point both the inline path and
/// the screening worker go through. A WAL append failure turns the
/// response into an error (the mutation is applied in memory but the
/// client must not treat it as durable); a snapshot failure only logs,
/// since the WAL still covers every acknowledged record.
fn handle_and_persist(shared: &Shared, request: &Request) -> Response {
    if matches!(request, Request::Metrics) {
        // Served entirely at this layer: never touches the state lock,
        // never enters the WAL.
        let mut metrics = shared.metrics.lock();
        metrics.count_request(request.kind(), true);
        return Response::with_metrics(metrics.snapshot());
    }
    let state = &mut *shared.state.lock();
    let mut response = state.handle(request);
    if response.ok && request.is_mutation() {
        if let Some(persist) = &shared.persist {
            let mut persister = persist.lock();
            let append_started = Instant::now();
            if let Err(err) = persister.append(request) {
                shared.metrics.lock().count_request(request.kind(), false);
                return Response::error(format!("applied but not persisted: {err}"));
            }
            shared
                .metrics
                .lock()
                .record_wal_fsync(append_started.elapsed());
            if persister.should_snapshot() {
                let snapshot = state.snapshot(persister.last_seq());
                let snapshot_started = Instant::now();
                match persister.write_snapshot(&snapshot) {
                    Ok(bytes) => shared
                        .metrics
                        .lock()
                        .record_snapshot(snapshot_started.elapsed(), bytes),
                    Err(err) => {
                        eprintln!("kessler-service: snapshot failed (wal still intact): {err}");
                    }
                }
            }
        }
    }
    let mut metrics = shared.metrics.lock();
    metrics.count_request(request.kind(), response.ok);
    if response.ok {
        if let Some(screen) = &response.screen {
            metrics.record_screen(&screen.variant, &screen.timings);
        }
        if response.advance.is_some() {
            // ADVANCE's reply has no timings; the tail screen it ran left
            // them on the engine.
            metrics.record_advance_tail(state.engine.last_timings());
        }
    }
    if let Some(status) = &mut response.status {
        status.metrics = Some(metrics.one_line());
    }
    response
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// The screening worker: drains jobs, isolating each screen inside
/// `catch_unwind` so a panic answers that one request with an ERROR
/// instead of killing the thread.
fn worker_loop(shared: &Shared, jobs: &Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Heavy { request, reply } => {
                if shared.faults.take_kill_worker() {
                    // Outside the guard: the thread dies and the
                    // supervisor must respawn it.
                    panic!("fault injection: kill worker");
                }
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    if shared.faults.take_panic_screen() {
                        panic!("fault injection: screening panic");
                    }
                    handle_and_persist(shared, &request)
                }));
                let response = outcome.unwrap_or_else(|payload| {
                    Response::error(format!("screening panicked: {}", panic_message(&*payload)))
                });
                let _ = reply.send(response);
            }
            Job::Stop => break,
        }
    }
}

/// Spawn the worker under a supervisor that respawns it if it ever dies
/// from an un-caught panic (graceful `Job::Stop` exits both).
fn spawn_supervised_worker(
    shared: Arc<Shared>,
    jobs: Receiver<Job>,
) -> Result<JoinHandle<()>, ServiceError> {
    thread::Builder::new()
        .name("kessler-screen-supervisor".into())
        .spawn(move || loop {
            let worker_shared = Arc::clone(&shared);
            let worker_jobs = jobs.clone();
            let worker = match thread::Builder::new()
                .name("kessler-screen".into())
                .spawn(move || worker_loop(&worker_shared, &worker_jobs))
            {
                Ok(handle) => handle,
                Err(err) => {
                    eprintln!("kessler-service: could not respawn screening worker: {err}");
                    return;
                }
            };
            match worker.join() {
                Ok(()) => return,
                Err(_) if shared.shutdown.load(Ordering::SeqCst) => return,
                Err(_) => {
                    shared.metrics.lock().note_respawn();
                    eprintln!("kessler-service: screening worker died; respawning");
                }
            }
        })
        .map_err(|e| ServiceError::Spawn {
            what: "screening supervisor",
            source: e,
        })
}

/// Periodically log the one-line metrics digest to stderr. Sleeps in
/// short steps so the thread notices shutdown within ~250 ms instead of
/// lingering a full interval; failure to spawn just disables the log.
fn spawn_metrics_reporter(shared: Arc<Shared>, every: Duration) {
    let spawned = thread::Builder::new()
        .name("kessler-metrics".into())
        .spawn(move || {
            let step = Duration::from_millis(250).min(every);
            let mut elapsed = Duration::ZERO;
            loop {
                thread::sleep(step);
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                elapsed += step;
                if elapsed >= every {
                    elapsed = Duration::ZERO;
                    eprintln!(
                        "kessler-service metrics: {}",
                        shared.metrics.lock().one_line()
                    );
                }
            }
        });
    if let Err(err) = spawned {
        eprintln!("kessler-service: could not spawn metrics reporter: {err}");
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
    recovery: Option<RecoverySummary>,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for ephemeral)
    /// with default options (no persistence).
    pub fn bind(addr: &str, config: ScreeningConfig) -> Result<Server, ServiceError> {
        Server::bind_with(addr, config, ServerOptions::default())
    }

    /// Bind with explicit options. With [`ServerOptions::persist`] set,
    /// recovers state from the directory before accepting connections:
    /// newest valid snapshot, then WAL tail replayed through the normal
    /// request path, then a fresh snapshot folding the replay in.
    pub fn bind_with(
        addr: &str,
        config: ScreeningConfig,
        options: ServerOptions,
    ) -> Result<Server, ServiceError> {
        let mut persister = None;
        let mut recovery_summary = None;
        let state = match &options.persist {
            Some(persist_options) => {
                let (mut p, recovery) =
                    Persister::open(persist_options, Arc::clone(&options.faults))?;
                let mut state = match &recovery.snapshot {
                    Some(snapshot) => ServiceState::restore_from(config, snapshot)?,
                    None => ServiceState::new(config).map_err(ServiceError::Config)?,
                };
                for request in &recovery.tail {
                    let response = state.handle(request);
                    if !response.ok {
                        return Err(ServiceError::Recovery(format!(
                            "replaying wal record {request:?}: {}",
                            response.error.unwrap_or_default()
                        )));
                    }
                }
                if !recovery.tail.is_empty() {
                    state.recovered = true;
                    // Fold the replay into a fresh snapshot so the next
                    // restart starts from here.
                    let snapshot = state.snapshot(p.last_seq());
                    p.write_snapshot(&snapshot)?;
                }
                recovery_summary = Some(RecoverySummary {
                    snapshot_seq: recovery.snapshot.as_ref().map(|s| s.wal_seq),
                    replayed: recovery.tail.len(),
                    torn_tail: recovery.torn_tail.is_some(),
                    corrupt_snapshots: recovery.corrupt_snapshots,
                });
                persister = Some(p);
                state
            }
            None => ServiceState::new(config).map_err(ServiceError::Config)?,
        };

        let listener = TcpListener::bind(addr).map_err(|e| ServiceError::Bind {
            addr: addr.to_string(),
            source: e,
        })?;
        let local = listener.local_addr().map_err(|e| ServiceError::Bind {
            addr: addr.to_string(),
            source: e,
        })?;
        let (jobs_tx, jobs_rx) = bounded::<Job>(options.queue_depth.max(1));
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            persist: persister.map(Mutex::new),
            metrics: Mutex::new(MetricsRegistry::new()),
            shutdown: AtomicBool::new(false),
            jobs: jobs_tx,
            addr: local,
            faults: options.faults,
            read_timeout: options.read_timeout,
            write_timeout: options.write_timeout,
            max_line_bytes: options.max_line_bytes.max(1024),
        });
        let supervisor = spawn_supervised_worker(Arc::clone(&shared), jobs_rx)?;
        if let Some(every) = options.metrics_every {
            spawn_metrics_reporter(Arc::clone(&shared), every);
        }
        Ok(Server {
            listener,
            shared,
            supervisor: Some(supervisor),
            recovery: recovery_summary,
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// What startup recovery found (`None` without persistence).
    pub fn recovery(&self) -> Option<&RecoverySummary> {
        self.recovery.as_ref()
    }

    /// Current catalog size (used by the CLI to skip preloading over a
    /// recovered catalog).
    pub fn catalog_len(&self) -> usize {
        self.shared.state.lock().catalog.len()
    }

    /// Seed the catalog before serving, using dense indices as external
    /// ids. Goes through the normal request path so the WAL covers it.
    pub fn preload(&self, population: &[KeplerElements]) -> Result<usize, ServiceError> {
        for (i, el) in population.iter().enumerate() {
            let request = Request::Add {
                id: i as u64,
                elements: ElementsSpec::from_elements(el),
            };
            let response = handle_and_persist(&self.shared, &request);
            if !response.ok {
                return Err(ServiceError::Recovery(format!(
                    "preload of satellite {i} failed: {}",
                    response.error.unwrap_or_default()
                )));
            }
        }
        Ok(population.len())
    }

    /// Accept connections until a SHUTDOWN request arrives. Blocks.
    pub fn run(mut self) {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            let _ = thread::Builder::new()
                .name("kessler-conn".into())
                .spawn(move || handle_connection(stream, shared));
        }
        let _ = self.shared.jobs.send(Job::Stop);
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }

    /// Run on a background thread; returns a handle for tests and the CLI.
    pub fn spawn(self) -> Result<ServerHandle, ServiceError> {
        let addr = self.local_addr();
        let join = thread::Builder::new()
            .name("kessler-serve".into())
            .spawn(move || self.run())
            .map_err(|e| ServiceError::Spawn {
                what: "server accept loop",
                source: e,
            })?;
        Ok(ServerHandle { addr, join })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    join: JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop and wait for it to exit.
    pub fn shutdown(self) {
        let _ = request(self.addr, &Request::Shutdown);
        let _ = self.join.join();
    }
}

enum LineOutcome {
    /// A complete line is in the buffer (newline included if present).
    Line,
    /// The line blew past the cap; the remainder was drained.
    Oversized,
    Eof,
}

/// Read one newline-terminated line of at most `max` bytes. An oversized
/// line is drained to its newline so the connection can resync, and
/// reported as [`LineOutcome::Oversized`] rather than an error — the
/// client gets a protocol-level ERROR and keeps its connection.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<LineOutcome> {
    buf.clear();
    // UFCS so `take` borrows the reader (via `impl Read for &mut R`)
    // instead of consuming it — the caller reuses it across lines.
    let n = Read::take(&mut *reader, max as u64 + 1).read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineOutcome::Eof);
    }
    if buf.len() > max && !buf.ends_with(b"\n") {
        drain_line(reader)?;
        return Ok(LineOutcome::Oversized);
    }
    Ok(LineOutcome::Line)
}

/// Consume input up to and including the next newline (or EOF).
fn drain_line<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(shared.read_timeout);
    let _ = stream.set_write_timeout(shared.write_timeout);
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let outcome = match read_bounded_line(&mut reader, &mut buf, shared.max_line_bytes) {
            Ok(outcome) => outcome,
            // Covers read timeouts (idle connections get reaped) and
            // resets; nothing to answer on a broken socket.
            Err(_) => break,
        };
        let mut is_shutdown = false;
        let response = match outcome {
            LineOutcome::Eof => break,
            LineOutcome::Oversized => Response::error(format!(
                "request line exceeds the {}-byte cap",
                shared.max_line_bytes
            )),
            LineOutcome::Line => {
                let text = String::from_utf8_lossy(&buf);
                let line = text.trim();
                if line.is_empty() {
                    continue;
                }
                let parsed: Result<Request, _> = serde_json::from_str(line);
                is_shutdown = matches!(parsed, Ok(Request::Shutdown));
                match parsed {
                    Err(e) => Response::error(format!("bad request: {e}")),
                    Ok(req @ (Request::Screen | Request::Delta | Request::Advance { .. })) => {
                        // Screening is serialized through the worker so
                        // overlapping clients don't contend inside rayon;
                        // the bounded queue sheds load explicitly.
                        let (reply_tx, reply_rx) = bounded(1);
                        let job = Job::Heavy {
                            request: req,
                            reply: reply_tx,
                        };
                        match shared.jobs.try_send(job) {
                            Ok(()) => {
                                // The enqueue itself proves a depth of ≥ 1
                                // even if the worker drains it instantly.
                                shared
                                    .metrics
                                    .lock()
                                    .note_queue_depth(shared.jobs.len().max(1));
                                reply_rx.recv().unwrap_or_else(|_| {
                                    Response::error("screening worker unavailable, retry")
                                })
                            }
                            Err(TrySendError::Full(_)) => {
                                Response::error("server busy: screening queue is full, retry later")
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                Response::error("server is shutting down")
                            }
                        }
                    }
                    Ok(req) => {
                        if is_shutdown {
                            shared.shutdown.store(true, Ordering::SeqCst);
                        }
                        handle_and_persist(&shared, &req)
                    }
                }
            }
        };
        let mut payload = match serde_json::to_string(&response) {
            Ok(p) => p,
            Err(_) => r#"{"ok":false,"error":"response serialization failed"}"#.to_string(),
        };
        payload.push('\n');
        if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if is_shutdown {
            // Poke the accept loop so it observes the shutdown flag.
            let _ = TcpStream::connect(shared.addr);
            break;
        }
    }
}

/// One-shot request/response over a fresh connection.
pub fn request<A: ToSocketAddrs>(addr: A, req: &Request) -> io::Result<Response> {
    let mut client = Client::connect(addr)?;
    client.send(req)
}

/// One-shot request/response with a deadline on connect, write, and read.
pub fn request_with_timeout<A: ToSocketAddrs>(
    addr: A,
    req: &Request,
    timeout: Duration,
) -> io::Result<Response> {
    let mut last_err = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                let reader = BufReader::new(stream.try_clone()?);
                let mut client = Client {
                    reader,
                    writer: stream,
                };
                return client.send(req);
            }
            Err(err) => last_err = Some(err),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no addresses to connect to")))
}

/// A persistent JSON-lines client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Apply read/write deadlines to the connection (`None` = blocking).
    pub fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(read)?;
        self.writer.set_write_timeout(write)
    }

    /// Send a request and block for its response.
    pub fn send(&mut self, req: &Request) -> io::Result<Response> {
        let line = serde_json::to_string(req)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.send_line(&line)
    }

    /// Send a raw line (not necessarily valid JSON) and read one response.
    /// Lines over [`MAX_LINE_BYTES`] are refused locally — the server
    /// would reject them anyway.
    pub fn send_line(&mut self, line: &str) -> io::Result<Response> {
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte protocol cap",
                    line.len()
                ),
            ));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ElementsSpec;

    fn spec(a: f64, incl: f64, m: f64) -> ElementsSpec {
        ElementsSpec {
            a,
            e: 0.001,
            incl,
            raan: 0.2,
            argp: 0.1,
            mean_anomaly: m,
        }
    }

    #[test]
    fn state_handles_catalog_lifecycle() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();

        let r = state.handle(&Request::Add {
            id: 7,
            elements: spec(7_000.0, 0.5, 0.0),
        });
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.catalog.unwrap().index, 0);

        let r = state.handle(&Request::Add {
            id: 7,
            elements: spec(7_000.0, 0.5, 0.0),
        });
        assert!(!r.ok, "duplicate add must fail");

        let r = state.handle(&Request::Update {
            id: 7,
            elements: spec(7_050.0, 0.6, 0.3),
        });
        assert!(r.ok);

        let r = state.handle(&Request::Status);
        let status = r.status.unwrap();
        assert_eq!(status.n_satellites, 1);
        assert_eq!(status.pending_changes, 1);
        assert_eq!(status.requests_served, 4);

        let r = state.handle(&Request::Remove { id: 7 });
        assert!(r.ok);
        let r = state.handle(&Request::Remove { id: 7 });
        assert!(!r.ok, "double remove must fail");
    }

    #[test]
    fn state_screens_and_clears_pending() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..12u64 {
            let r = state.handle(&Request::Add {
                id: i,
                elements: spec(
                    7_000.0 + i as f64 * 3.0,
                    0.4 + (i % 5) as f64 * 0.3,
                    i as f64 * 0.37,
                ),
            });
            assert!(r.ok);
        }
        let r = state.handle(&Request::Screen);
        let screen = r.screen.unwrap();
        assert_eq!(screen.n_satellites, 12);
        assert_eq!(screen.variant, "grid");

        let r = state.handle(&Request::Status);
        assert_eq!(r.status.unwrap().pending_changes, 0);

        // A delta after one update agrees with the maintained set size.
        state.handle(&Request::Update {
            id: 3,
            elements: spec(7_009.5, 1.6, 2.0),
        });
        let r = state.handle(&Request::Delta);
        let delta = r.screen.unwrap();
        assert_eq!(delta.variant, crate::delta::DELTA_VARIANT);
        let r = state.handle(&Request::Status);
        let status = r.status.unwrap();
        assert_eq!(status.pending_changes, 0);
        assert_eq!(status.full_screens, 1);
        assert_eq!(status.delta_screens, 1);
        assert!(status.last_screen.is_some());
    }

    #[test]
    fn state_refuses_metrics_requests() {
        // METRICS is answered by the daemon layer without the state lock;
        // the state itself treating it as an error keeps it out of the WAL
        // (only ok mutations are appended).
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        let r = state.handle(&Request::Metrics);
        assert!(!r.ok);
        assert!(!Request::Metrics.is_mutation());
    }

    #[test]
    fn repeated_advances_do_not_drift_from_one_big_advance() {
        // Daemon-level version of the catalog drift regression: N small
        // ADVANCEs and one big ADVANCE must leave identical catalogs.
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut stepped = ServiceState::new(config).unwrap();
        let mut jumped = ServiceState::new(config).unwrap();
        for i in 0..6u64 {
            let s = spec(7_000.0 + i as f64 * 5.0, 0.4 + i as f64 * 0.2, i as f64);
            assert!(stepped.handle(&Request::Add { id: i, elements: s }).ok);
            assert!(jumped.handle(&Request::Add { id: i, elements: s }).ok);
        }
        let dt = 0.5;
        let steps = 1_000u32;
        for _ in 0..steps {
            assert!(stepped.handle(&Request::Advance { dt }).ok);
        }
        assert!(
            jumped
                .handle(&Request::Advance {
                    dt: dt * steps as f64
                })
                .ok
        );
        for (s, j) in stepped
            .catalog()
            .elements()
            .iter()
            .zip(jumped.catalog().elements())
        {
            let d = (s.mean_anomaly - j.mean_anomaly).abs() % std::f64::consts::TAU;
            let d = d.min(std::f64::consts::TAU - d);
            assert!(d <= 1e-9, "mean anomaly drifted {d} rad");
        }
        assert_eq!(
            stepped.status().window,
            jumped.status().window,
            "window bookkeeping must agree too"
        );
    }

    #[test]
    fn state_rejects_invalid_elements() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        let r = state.handle(&Request::Add {
            id: 1,
            elements: ElementsSpec {
                a: -5.0,
                e: 0.0,
                incl: 0.0,
                raan: 0.0,
                argp: 0.0,
                mean_anomaly: 0.0,
            },
        });
        assert!(!r.ok);
        assert!(r.error.is_some());
    }

    #[test]
    fn state_advances_window() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..6u64 {
            state.handle(&Request::Add {
                id: i,
                elements: spec(7_000.0 + i as f64 * 5.0, 0.4 + i as f64 * 0.2, i as f64),
            });
        }
        let r = state.handle(&Request::Advance { dt: 60.0 });
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.advance.unwrap().window, (60.0, 180.0));
        let r = state.handle(&Request::Advance { dt: -1.0 });
        assert!(!r.ok, "negative dt must fail");
    }

    #[test]
    fn state_snapshot_roundtrips() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..10u64 {
            state.handle(&Request::Add {
                id: i * 10,
                elements: spec(
                    7_000.0 + i as f64 * 3.0,
                    0.4 + (i % 5) as f64 * 0.3,
                    i as f64 * 0.37,
                ),
            });
        }
        state.handle(&Request::Screen);
        state.handle(&Request::Update {
            id: 30,
            elements: spec(7_009.5, 1.6, 2.0),
        });
        state.handle(&Request::Advance { dt: 30.0 });
        state.handle(&Request::Update {
            id: 50,
            elements: spec(7_020.0, 0.8, 1.0),
        });

        let snapshot = state.snapshot(17);
        assert_eq!(snapshot.wal_seq, 17);
        let restored = ServiceState::restore_from(config, &snapshot).unwrap();

        let a = state.status();
        let b = restored.status();
        assert_eq!(b.n_satellites, a.n_satellites);
        assert_eq!(b.epoch, a.epoch);
        assert_eq!(b.pending_changes, a.pending_changes);
        assert_eq!(b.live_conjunctions, a.live_conjunctions);
        assert_eq!(b.full_screens, a.full_screens);
        assert_eq!(b.delta_screens, a.delta_screens);
        assert_eq!(b.window, a.window);
        assert_eq!(
            restored.engine().conjunctions(),
            state.engine().conjunctions()
        );
        assert_eq!(restored.catalog().ids(), state.catalog().ids());

        // The request counter survives the round-trip instead of resetting,
        // recovery is flagged, and the catalog's absolute time (and thus
        // future ADVANCE propagation) is preserved.
        assert_eq!(b.requests_served, a.requests_served);
        assert!(a.requests_served > 0);
        assert!(!a.recovered);
        assert!(b.recovered);
        assert_eq!(restored.catalog().time(), state.catalog().time());
        assert_eq!(
            b.last_screen.as_ref().map(|l| l.variant.clone()),
            a.last_screen.as_ref().map(|l| l.variant.clone())
        );

        // A corrupted snapshot is rejected, not silently accepted.
        let mut bad = snapshot.clone();
        bad.generations.pop();
        assert!(ServiceState::restore_from(config, &bad).is_err());
    }

    #[test]
    fn bounded_line_reader_enforces_the_cap() {
        use std::io::Cursor;
        let mut buf = Vec::new();

        let mut ok = Cursor::new(b"{\"cmd\":\"STATUS\"}\nrest\n".to_vec());
        assert!(matches!(
            read_bounded_line(&mut ok, &mut buf, 64).unwrap(),
            LineOutcome::Line
        ));
        assert_eq!(buf, b"{\"cmd\":\"STATUS\"}\n");

        // An oversized line is drained; the next line still parses.
        let mut big = Vec::new();
        big.extend(std::iter::repeat_n(b'x', 100));
        big.push(b'\n');
        big.extend_from_slice(b"after\n");
        let mut oversized = Cursor::new(big);
        assert!(matches!(
            read_bounded_line(&mut oversized, &mut buf, 64).unwrap(),
            LineOutcome::Oversized
        ));
        assert!(matches!(
            read_bounded_line(&mut oversized, &mut buf, 64).unwrap(),
            LineOutcome::Line
        ));
        assert_eq!(buf, b"after\n");
        assert!(matches!(
            read_bounded_line(&mut oversized, &mut buf, 64).unwrap(),
            LineOutcome::Eof
        ));

        // Exactly at the cap (plus newline) is still fine.
        let mut exact = Cursor::new([vec![b'y'; 64], vec![b'\n']].concat());
        assert!(matches!(
            read_bounded_line(&mut exact, &mut buf, 64).unwrap(),
            LineOutcome::Line
        ));
    }
}
