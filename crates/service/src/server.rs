//! JSON-lines-over-TCP conjunction-screening daemon.
//!
//! Architecture: a thread per connection parses requests; cheap catalog
//! mutations and STATUS execute inline under the state mutex, while
//! screening commands (SCREEN / DELTA / ADVANCE) are funnelled through a
//! single worker thread via a crossbeam channel, so concurrent clients
//! cannot stampede the rayon pool with overlapping screens. Shared state is
//! a [`ServiceState`] behind a `parking_lot::Mutex`.
//!
//! Everything is std networking plus the workspace's existing concurrency
//! crates — no async runtime, no protocol framework.

use crate::catalog::Catalog;
use crate::delta::DeltaEngine;
use crate::proto::{
    AdvanceAck, CatalogAck, LastScreen, Request, Response, ScreenSummary, StatusInfo,
};
use crossbeam::channel::{bounded, unbounded, Sender};
use kessler_core::ScreeningConfig;
use kessler_orbits::KeplerElements;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// The daemon's mutable heart: catalog + warm delta engine + change set.
pub struct ServiceState {
    catalog: Catalog,
    engine: DeltaEngine,
    /// Dense indices changed since the last screen.
    changed: BTreeSet<u32>,
    /// Absolute start of the screening window (advanced by ADVANCE).
    window_start: f64,
    requests: u64,
    started: Instant,
}

impl ServiceState {
    pub fn new(config: ScreeningConfig) -> Result<ServiceState, String> {
        Ok(ServiceState {
            catalog: Catalog::new(),
            engine: DeltaEngine::new(config)?,
            changed: BTreeSet::new(),
            window_start: 0.0,
            requests: 0,
            started: Instant::now(),
        })
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn engine(&self) -> &DeltaEngine {
        &self.engine
    }

    fn note_request(&mut self) {
        self.requests += 1;
    }

    /// Execute one request against the state. Pure request→response; all
    /// I/O lives in the connection handler.
    pub fn handle(&mut self, request: &Request) -> Response {
        self.note_request();
        match request {
            Request::Add { id, elements } => {
                let el = match elements.into_elements() {
                    Ok(el) => el,
                    Err(e) => return Response::error(e),
                };
                match self.catalog.add(*id, el) {
                    Ok(index) => {
                        self.changed.insert(index);
                        Response::with_catalog(self.catalog_ack(*id, index))
                    }
                    Err(e) => Response::error(e.to_string()),
                }
            }
            Request::Update { id, elements } => {
                let el = match elements.into_elements() {
                    Ok(el) => el,
                    Err(e) => return Response::error(e),
                };
                match self.catalog.update(*id, el) {
                    Ok(index) => {
                        self.changed.insert(index);
                        Response::with_catalog(self.catalog_ack(*id, index))
                    }
                    Err(e) => Response::error(e.to_string()),
                }
            }
            Request::Remove { id } => match self.catalog.remove(*id) {
                Ok(removal) => {
                    let new_len = self.catalog.len();
                    self.engine.apply_removal(removal, new_len);
                    // The old last index no longer exists; if a satellite
                    // moved into the hole it now needs re-screening.
                    if let Some(last) = removal.moved_from {
                        self.changed.remove(&last);
                        self.changed.insert(removal.removed_index);
                    } else {
                        self.changed.remove(&removal.removed_index);
                    }
                    self.changed.retain(|&i| (i as usize) < new_len);
                    Response::with_catalog(self.catalog_ack(*id, removal.removed_index))
                }
                Err(e) => Response::error(e.to_string()),
            },
            Request::Screen => {
                let report = self.engine.full_screen(self.catalog.elements());
                self.changed.clear();
                Response::with_screen(ScreenSummary::from_report(&report))
            }
            Request::Delta => {
                let changed: Vec<u32> = self.changed.iter().copied().collect();
                let report = self.engine.delta_screen(self.catalog.elements(), &changed);
                self.changed.clear();
                Response::with_screen(ScreenSummary::from_report(&report))
            }
            Request::Advance { dt } => {
                if !dt.is_finite() || *dt <= 0.0 {
                    return Response::error(format!(
                        "advance dt must be positive and finite, got {dt}"
                    ));
                }
                if !self.engine.is_warm() {
                    self.engine.full_screen(self.catalog.elements());
                    self.changed.clear();
                } else if !self.changed.is_empty() {
                    // Fold pending mutations in first so the carried-forward
                    // conjunction set reflects the current catalog.
                    let changed: Vec<u32> = self.changed.iter().copied().collect();
                    self.engine.delta_screen(self.catalog.elements(), &changed);
                    self.changed.clear();
                }
                self.catalog.advance_all(*dt);
                match self.engine.advance_window(self.catalog.elements(), *dt) {
                    Ok(outcome) => {
                        self.window_start += dt;
                        Response::with_advance(AdvanceAck {
                            retired: outcome.retired,
                            discovered: outcome.discovered,
                            window: self.window(),
                        })
                    }
                    Err(e) => Response::error(e),
                }
            }
            Request::Status => Response::with_status(self.status()),
            Request::Shutdown => Response::ack(),
        }
    }

    fn catalog_ack(&self, id: u64, index: u32) -> CatalogAck {
        CatalogAck {
            id,
            index,
            n_satellites: self.catalog.len(),
            epoch: self.catalog.epoch(),
        }
    }

    fn window(&self) -> (f64, f64) {
        (
            self.window_start,
            self.window_start + self.engine.config().span_seconds,
        )
    }

    pub fn status(&self) -> StatusInfo {
        let last_screen = self.engine.is_warm().then(|| LastScreen {
            variant: if self.engine.delta_screens() > 0 {
                crate::delta::DELTA_VARIANT.to_string()
            } else {
                "grid".to_string()
            },
            timings: *self.engine.last_timings(),
        });
        StatusInfo {
            n_satellites: self.catalog.len(),
            epoch: self.catalog.epoch(),
            pending_changes: self.changed.len(),
            live_conjunctions: self.engine.conjunction_count(),
            full_screens: self.engine.full_screens(),
            delta_screens: self.engine.delta_screens(),
            requests_served: self.requests,
            uptime_ms: self.started.elapsed().as_secs_f64() * 1e3,
            window: self.window(),
            last_screen,
        }
    }
}

/// Work the connection threads hand to the single screening worker.
enum Job {
    Heavy {
        request: Request,
        reply: Sender<Response>,
    },
    Stop,
}

struct Shared {
    state: Mutex<ServiceState>,
    shutdown: AtomicBool,
    jobs: Sender<Job>,
    addr: SocketAddr,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for ephemeral).
    pub fn bind(addr: &str, config: ScreeningConfig) -> Result<Server, String> {
        let state = ServiceState::new(config)?;
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("could not bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("no local addr: {e}"))?;
        let (jobs_tx, jobs_rx) = unbounded::<Job>();
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            shutdown: AtomicBool::new(false),
            jobs: jobs_tx,
            addr: local,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("kessler-screen".into())
            .spawn(move || {
                while let Ok(job) = jobs_rx.recv() {
                    match job {
                        Job::Heavy { request, reply } => {
                            let response = worker_shared.state.lock().handle(&request);
                            let _ = reply.send(response);
                        }
                        Job::Stop => break,
                    }
                }
            })
            .map_err(|e| format!("could not spawn screening worker: {e}"))?;
        Ok(Server {
            listener,
            shared,
            worker: Some(worker),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Seed the catalog before serving, using dense indices as external ids.
    pub fn preload(&self, population: &[KeplerElements]) -> Result<usize, String> {
        let mut state = self.shared.state.lock();
        for (i, el) in population.iter().enumerate() {
            let index = state
                .catalog
                .add(i as u64, *el)
                .map_err(|e| e.to_string())?;
            state.changed.insert(index);
        }
        Ok(population.len())
    }

    /// Accept connections until a SHUTDOWN request arrives. Blocks.
    pub fn run(mut self) {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            let _ = thread::Builder::new()
                .name("kessler-conn".into())
                .spawn(move || handle_connection(stream, shared));
        }
        let _ = self.shared.jobs.send(Job::Stop);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }

    /// Run on a background thread; returns a handle for tests and the CLI.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let join = thread::Builder::new()
            .name("kessler-serve".into())
            .spawn(move || self.run())
            .expect("could not spawn server thread");
        ServerHandle { addr, join }
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    join: JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop and wait for it to exit.
    pub fn shutdown(self) {
        let _ = request(self.addr, &Request::Shutdown);
        let _ = self.join.join();
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let parsed: Result<Request, _> = serde_json::from_str(&line);
        let is_shutdown = matches!(parsed, Ok(Request::Shutdown));
        let response = match parsed {
            Err(e) => Response::error(format!("bad request: {e}")),
            Ok(req @ (Request::Screen | Request::Delta | Request::Advance { .. })) => {
                // Screening is serialized through the worker so overlapping
                // clients don't contend inside rayon.
                let (reply_tx, reply_rx) = bounded(1);
                let job = Job::Heavy {
                    request: req,
                    reply: reply_tx,
                };
                if shared.jobs.send(job).is_err() {
                    Response::error("server is shutting down")
                } else {
                    reply_rx
                        .recv()
                        .unwrap_or_else(|_| Response::error("screening worker unavailable"))
                }
            }
            Ok(req) => {
                if is_shutdown {
                    shared.shutdown.store(true, Ordering::SeqCst);
                }
                shared.state.lock().handle(&req)
            }
        };
        let mut payload = match serde_json::to_string(&response) {
            Ok(p) => p,
            Err(_) => r#"{"ok":false,"error":"response serialization failed"}"#.to_string(),
        };
        payload.push('\n');
        if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if is_shutdown {
            // Poke the accept loop so it observes the shutdown flag.
            let _ = TcpStream::connect(shared.addr);
            break;
        }
    }
}

/// One-shot request/response over a fresh connection.
pub fn request<A: ToSocketAddrs>(addr: A, req: &Request) -> io::Result<Response> {
    let mut client = Client::connect(addr)?;
    client.send(req)
}

/// A persistent JSON-lines client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Send a request and block for its response.
    pub fn send(&mut self, req: &Request) -> io::Result<Response> {
        let line = serde_json::to_string(req)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.send_line(&line)
    }

    /// Send a raw line (not necessarily valid JSON) and read one response.
    pub fn send_line(&mut self, line: &str) -> io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ElementsSpec;

    fn spec(a: f64, incl: f64, m: f64) -> ElementsSpec {
        ElementsSpec {
            a,
            e: 0.001,
            incl,
            raan: 0.2,
            argp: 0.1,
            mean_anomaly: m,
        }
    }

    #[test]
    fn state_handles_catalog_lifecycle() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();

        let r = state.handle(&Request::Add {
            id: 7,
            elements: spec(7_000.0, 0.5, 0.0),
        });
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.catalog.unwrap().index, 0);

        let r = state.handle(&Request::Add {
            id: 7,
            elements: spec(7_000.0, 0.5, 0.0),
        });
        assert!(!r.ok, "duplicate add must fail");

        let r = state.handle(&Request::Update {
            id: 7,
            elements: spec(7_050.0, 0.6, 0.3),
        });
        assert!(r.ok);

        let r = state.handle(&Request::Status);
        let status = r.status.unwrap();
        assert_eq!(status.n_satellites, 1);
        assert_eq!(status.pending_changes, 1);
        assert_eq!(status.requests_served, 4);

        let r = state.handle(&Request::Remove { id: 7 });
        assert!(r.ok);
        let r = state.handle(&Request::Remove { id: 7 });
        assert!(!r.ok, "double remove must fail");
    }

    #[test]
    fn state_screens_and_clears_pending() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..12u64 {
            let r = state.handle(&Request::Add {
                id: i,
                elements: spec(
                    7_000.0 + i as f64 * 3.0,
                    0.4 + (i % 5) as f64 * 0.3,
                    i as f64 * 0.37,
                ),
            });
            assert!(r.ok);
        }
        let r = state.handle(&Request::Screen);
        let screen = r.screen.unwrap();
        assert_eq!(screen.n_satellites, 12);
        assert_eq!(screen.variant, "grid");

        let r = state.handle(&Request::Status);
        assert_eq!(r.status.unwrap().pending_changes, 0);

        // A delta after one update agrees with the maintained set size.
        state.handle(&Request::Update {
            id: 3,
            elements: spec(7_009.5, 1.6, 2.0),
        });
        let r = state.handle(&Request::Delta);
        let delta = r.screen.unwrap();
        assert_eq!(delta.variant, crate::delta::DELTA_VARIANT);
        let r = state.handle(&Request::Status);
        let status = r.status.unwrap();
        assert_eq!(status.pending_changes, 0);
        assert_eq!(status.full_screens, 1);
        assert_eq!(status.delta_screens, 1);
        assert!(status.last_screen.is_some());
    }

    #[test]
    fn state_rejects_invalid_elements() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        let r = state.handle(&Request::Add {
            id: 1,
            elements: ElementsSpec {
                a: -5.0,
                e: 0.0,
                incl: 0.0,
                raan: 0.0,
                argp: 0.0,
                mean_anomaly: 0.0,
            },
        });
        assert!(!r.ok);
        assert!(r.error.is_some());
    }

    #[test]
    fn state_advances_window() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..6u64 {
            state.handle(&Request::Add {
                id: i,
                elements: spec(7_000.0 + i as f64 * 5.0, 0.4 + i as f64 * 0.2, i as f64),
            });
        }
        let r = state.handle(&Request::Advance { dt: 60.0 });
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.advance.unwrap().window, (60.0, 180.0));
        let r = state.handle(&Request::Advance { dt: -1.0 });
        assert!(!r.ok, "negative dt must fail");
    }
}
