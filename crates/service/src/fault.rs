//! Deterministic fault injection for the crash-safety test harness.
//!
//! A [`FaultPlan`] is a set of one-shot counters the daemon consults at
//! well-defined points: just before screening work (panic injection), at
//! the top of the worker loop (worker kill), and inside the WAL writer
//! and snapshot paths (torn appends, I/O failures). Production code never
//! arms a plan — the default is inert and every check is a single
//! relaxed-ish atomic load — but the fault-injection suites
//! (`tests/faults.rs`, `tests/disk_faults.rs`) arm them to prove the
//! daemon degrades gracefully instead of crashing or corrupting state.
//!
//! Two fault shapes exist: *one-shot* counters (`arm_*`) fire exactly
//! once per arm — a transient glitch — and *sticky* flags (`set_*`)
//! fail every operation until cleared — a full disk or a dead device.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// `EIO` — generic device-level I/O failure.
const EIO: i32 = 5;
/// `ENOSPC` — disk full. Raw OS code so the error formats exactly as a
/// real full disk would ("No space left on device (os error 28)").
const ENOSPC: i32 = 28;

/// One-shot fault counters and sticky outage flags shared between a test
/// and a running server.
///
/// Each `arm_*` call schedules exactly one future fault; arming twice
/// schedules two. All methods are thread-safe.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Panic *inside* the worker's `catch_unwind` guard while screening:
    /// the request must get an ERROR response and the worker must survive.
    panic_screen: AtomicU32,
    /// Panic *outside* the guard: the worker thread dies and the
    /// supervisor must respawn it.
    kill_worker: AtomicU32,
    /// Tear the next WAL append: write only a prefix of the record (as a
    /// crash mid-`write` would) while still reporting success.
    torn_wal: AtomicU32,
    /// Fail the next WAL append with EIO *before* any bytes are written.
    wal_append_eio: AtomicU32,
    /// Fail the next WAL append with ENOSPC before any bytes are written.
    wal_append_enospc: AtomicU32,
    /// Let the next WAL append's bytes land but fail the fsync — the
    /// nastiest storage fault: a complete record on disk for a mutation
    /// the caller will be told failed.
    wal_fsync_fail: AtomicU32,
    /// Fail the next snapshot's tmp-file write.
    snapshot_write_fail: AtomicU32,
    /// Fail the next snapshot's rename-into-place (tmp file left behind,
    /// as a real rename failure would).
    snapshot_rename_fail: AtomicU32,
    /// Sticky: every WAL append fails until cleared (permanent outage).
    wal_broken: AtomicBool,
    /// Sticky: every snapshot write fails until cleared.
    snapshot_broken: AtomicBool,
}

fn take(counter: &AtomicU32) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
        .is_ok()
}

impl FaultPlan {
    /// An inert plan (what [`crate::server::ServerOptions::default`] uses).
    pub fn inert() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Panic inside the screening guard on the next heavy request.
    pub fn arm_panic_screen(&self) {
        self.panic_screen.fetch_add(1, Ordering::SeqCst);
    }

    /// Kill the worker thread on the next heavy request.
    pub fn arm_kill_worker(&self) {
        self.kill_worker.fetch_add(1, Ordering::SeqCst);
    }

    /// Tear the next WAL append mid-record.
    pub fn arm_torn_wal(&self) {
        self.torn_wal.fetch_add(1, Ordering::SeqCst);
    }

    /// Fail the next WAL append with EIO (nothing written).
    pub fn arm_wal_append_eio(&self) {
        self.wal_append_eio.fetch_add(1, Ordering::SeqCst);
    }

    /// Fail the next WAL append with ENOSPC (nothing written).
    pub fn arm_wal_append_enospc(&self) {
        self.wal_append_enospc.fetch_add(1, Ordering::SeqCst);
    }

    /// Write the next WAL record's bytes but fail its fsync.
    pub fn arm_wal_fsync_fail(&self) {
        self.wal_fsync_fail.fetch_add(1, Ordering::SeqCst);
    }

    /// Fail the next snapshot's tmp-file write.
    pub fn arm_snapshot_write_fail(&self) {
        self.snapshot_write_fail.fetch_add(1, Ordering::SeqCst);
    }

    /// Fail the next snapshot's rename-into-place.
    pub fn arm_snapshot_rename_fail(&self) {
        self.snapshot_rename_fail.fetch_add(1, Ordering::SeqCst);
    }

    /// Permanent WAL outage: every append fails until `set_wal_broken(false)`.
    pub fn set_wal_broken(&self, broken: bool) {
        self.wal_broken.store(broken, Ordering::SeqCst);
    }

    /// Permanent snapshot outage: every snapshot write fails until cleared.
    pub fn set_snapshot_broken(&self, broken: bool) {
        self.snapshot_broken.store(broken, Ordering::SeqCst);
    }

    pub(crate) fn take_panic_screen(&self) -> bool {
        take(&self.panic_screen)
    }

    pub(crate) fn take_kill_worker(&self) -> bool {
        take(&self.kill_worker)
    }

    pub(crate) fn take_torn_wal(&self) -> bool {
        take(&self.torn_wal)
    }

    /// The injected failure for the next WAL append, if one is armed.
    /// Checked before any bytes are written, so these faults are clean
    /// rejections; the fsync fault (checked inside the writer) is the one
    /// that leaves residue behind.
    pub(crate) fn take_wal_append_error(&self) -> Option<io::Error> {
        if self.wal_broken.load(Ordering::SeqCst) {
            return Some(io::Error::from_raw_os_error(EIO));
        }
        if take(&self.wal_append_eio) {
            return Some(io::Error::from_raw_os_error(EIO));
        }
        if take(&self.wal_append_enospc) {
            return Some(io::Error::from_raw_os_error(ENOSPC));
        }
        None
    }

    pub(crate) fn take_wal_fsync_error(&self) -> Option<io::Error> {
        take(&self.wal_fsync_fail).then(|| io::Error::from_raw_os_error(EIO))
    }

    pub(crate) fn take_snapshot_write_error(&self) -> Option<io::Error> {
        if self.snapshot_broken.load(Ordering::SeqCst) {
            return Some(io::Error::from_raw_os_error(ENOSPC));
        }
        take(&self.snapshot_write_fail).then(|| io::Error::from_raw_os_error(ENOSPC))
    }

    pub(crate) fn take_snapshot_rename_error(&self) -> Option<io::Error> {
        take(&self.snapshot_rename_fail).then(|| io::Error::from_raw_os_error(EIO))
    }

    /// `true` while the sticky WAL outage is set (the persistence probe
    /// consults this so a probe cannot succeed against a broken disk).
    pub(crate) fn wal_is_broken(&self) -> bool {
        self.wal_broken.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once_per_arm() {
        let plan = FaultPlan::default();
        assert!(!plan.take_panic_screen());
        plan.arm_panic_screen();
        assert!(plan.take_panic_screen());
        assert!(!plan.take_panic_screen());

        plan.arm_torn_wal();
        plan.arm_torn_wal();
        assert!(plan.take_torn_wal());
        assert!(plan.take_torn_wal());
        assert!(!plan.take_torn_wal());

        assert!(!plan.take_kill_worker());
        plan.arm_kill_worker();
        assert!(plan.take_kill_worker());
    }

    #[test]
    fn storage_faults_fire_once_and_carry_the_right_errno() {
        let plan = FaultPlan::default();
        assert!(plan.take_wal_append_error().is_none());

        plan.arm_wal_append_eio();
        let err = plan.take_wal_append_error().expect("armed EIO");
        assert_eq!(err.raw_os_error(), Some(EIO));
        assert!(plan.take_wal_append_error().is_none());

        plan.arm_wal_append_enospc();
        let err = plan.take_wal_append_error().expect("armed ENOSPC");
        assert_eq!(err.raw_os_error(), Some(ENOSPC));

        plan.arm_wal_fsync_fail();
        assert!(plan.take_wal_fsync_error().is_some());
        assert!(plan.take_wal_fsync_error().is_none());

        plan.arm_snapshot_write_fail();
        assert!(plan.take_snapshot_write_error().is_some());
        assert!(plan.take_snapshot_write_error().is_none());
        plan.arm_snapshot_rename_fail();
        assert!(plan.take_snapshot_rename_error().is_some());
    }

    #[test]
    fn sticky_outages_fail_every_time_until_cleared() {
        let plan = FaultPlan::default();
        plan.set_wal_broken(true);
        assert!(plan.wal_is_broken());
        assert!(plan.take_wal_append_error().is_some());
        assert!(
            plan.take_wal_append_error().is_some(),
            "sticky, not one-shot"
        );
        plan.set_wal_broken(false);
        assert!(!plan.wal_is_broken());
        assert!(plan.take_wal_append_error().is_none());

        plan.set_snapshot_broken(true);
        assert!(plan.take_snapshot_write_error().is_some());
        assert!(plan.take_snapshot_write_error().is_some());
        plan.set_snapshot_broken(false);
        assert!(plan.take_snapshot_write_error().is_none());
    }
}
