//! Deterministic fault injection for the crash-safety test harness.
//!
//! A [`FaultPlan`] is a set of one-shot counters the daemon consults at
//! well-defined points: just before screening work (panic injection), at
//! the top of the worker loop (worker kill), and inside the WAL writer
//! (torn append). Production code never arms a plan — the default is
//! inert and every check is a single relaxed-ish atomic load — but the
//! fault-injection suite (`tests/faults.rs`) arms them to prove the
//! daemon degrades gracefully instead of crashing or corrupting state.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// One-shot fault counters shared between a test and a running server.
///
/// Each `arm_*` call schedules exactly one future fault; arming twice
/// schedules two. All methods are thread-safe.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Panic *inside* the worker's `catch_unwind` guard while screening:
    /// the request must get an ERROR response and the worker must survive.
    panic_screen: AtomicU32,
    /// Panic *outside* the guard: the worker thread dies and the
    /// supervisor must respawn it.
    kill_worker: AtomicU32,
    /// Tear the next WAL append: write only a prefix of the record (as a
    /// crash mid-`write` would) while still reporting success.
    torn_wal: AtomicU32,
}

fn take(counter: &AtomicU32) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
        .is_ok()
}

impl FaultPlan {
    /// An inert plan (what [`crate::server::ServerOptions::default`] uses).
    pub fn inert() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Panic inside the screening guard on the next heavy request.
    pub fn arm_panic_screen(&self) {
        self.panic_screen.fetch_add(1, Ordering::SeqCst);
    }

    /// Kill the worker thread on the next heavy request.
    pub fn arm_kill_worker(&self) {
        self.kill_worker.fetch_add(1, Ordering::SeqCst);
    }

    /// Tear the next WAL append mid-record.
    pub fn arm_torn_wal(&self) {
        self.torn_wal.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn take_panic_screen(&self) -> bool {
        take(&self.panic_screen)
    }

    pub(crate) fn take_kill_worker(&self) -> bool {
        take(&self.kill_worker)
    }

    pub(crate) fn take_torn_wal(&self) -> bool {
        take(&self.torn_wal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once_per_arm() {
        let plan = FaultPlan::default();
        assert!(!plan.take_panic_screen());
        plan.arm_panic_screen();
        assert!(plan.take_panic_screen());
        assert!(!plan.take_panic_screen());

        plan.arm_torn_wal();
        plan.arm_torn_wal();
        assert!(plan.take_torn_wal());
        assert!(plan.take_torn_wal());
        assert!(!plan.take_torn_wal());

        assert!(!plan.take_kill_worker());
        plan.arm_kill_worker();
        assert!(plan.take_kill_worker());
    }
}
