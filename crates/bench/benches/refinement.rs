//! PCA/TCA refinement benchmarks: one Brent search per candidate pair is
//! the dominant cost of the grid variant's CD phase.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kessler_core::refine::{grid_refine_interval, refine_pair};
use kessler_math::brent::brent_minimize;
use kessler_math::Interval;
use kessler_orbits::propagator::PropagationConstants;
use kessler_orbits::{ContourSolver, KeplerElements};

fn crossing_pair() -> (PropagationConstants, PropagationConstants) {
    (
        PropagationConstants::from_elements(
            &KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
        ),
        PropagationConstants::from_elements(
            &KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ),
    )
}

fn bench_brent_core(c: &mut Criterion) {
    c.bench_function("brent_minimize_parabola", |b| {
        b.iter(|| {
            black_box(brent_minimize(
                |x| (x - 2.5) * (x - 2.5) + 1.0,
                black_box(0.0),
                black_box(10.0),
                1e-10,
                100,
            ))
        })
    });
}

fn bench_refine_pair(c: &mut Criterion) {
    let (a, b_) = crossing_pair();
    let solver = ContourSolver::default();
    c.bench_function("refine_pair_hit", |bch| {
        bch.iter(|| {
            black_box(refine_pair(
                &a,
                &b_,
                &solver,
                0,
                1,
                Interval::new(-10.0, 10.0),
                2.0,
            ))
        })
    });
    c.bench_function("refine_pair_miss", |bch| {
        bch.iter(|| {
            black_box(refine_pair(
                &a,
                &b_,
                &solver,
                0,
                1,
                Interval::new(500.0, 520.0),
                2.0,
            ))
        })
    });
    c.bench_function("grid_refine_interval", |bch| {
        bch.iter(|| black_box(grid_refine_interval(&a, &b_, &solver, 100.0, 9.8)))
    });
}

criterion_group!(benches, bench_brent_core, bench_refine_pair);
criterion_main!(benches);
