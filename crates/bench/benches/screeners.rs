//! End-to-end screener benchmarks — the Criterion companion to the
//! `exp_fig10` experiment binary (which produces the actual Fig. 10
//! series; these benches give statistically robust per-variant medians at
//! one Criterion-friendly size).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kessler_bench::experiment_population;
use kessler_core::{
    GpuGridScreener, GpuHybridScreener, GridScreener, HybridScreener, LegacyScreener, Screener,
    ScreeningConfig,
};

fn bench_variants(c: &mut Criterion) {
    let n = 1_000usize;
    let span = 120.0;
    let population = experiment_population(n);
    let grid_cfg = ScreeningConfig::grid_defaults(2.0, span);
    let hybrid_cfg = ScreeningConfig::hybrid_defaults(2.0, span);

    let mut group = c.benchmark_group("screen_1000");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("variant", "legacy"), |b| {
        let s = LegacyScreener::new(grid_cfg);
        b.iter(|| black_box(s.screen(&population).conjunction_count()))
    });
    group.bench_function(BenchmarkId::new("variant", "grid"), |b| {
        let s = GridScreener::new(grid_cfg);
        b.iter(|| black_box(s.screen(&population).conjunction_count()))
    });
    group.bench_function(BenchmarkId::new("variant", "hybrid"), |b| {
        let s = HybridScreener::new(hybrid_cfg);
        b.iter(|| black_box(s.screen(&population).conjunction_count()))
    });
    group.bench_function(BenchmarkId::new("variant", "grid-gpusim"), |b| {
        let s = GpuGridScreener::new(grid_cfg);
        b.iter(|| black_box(s.screen(&population).conjunction_count()))
    });
    group.bench_function(BenchmarkId::new("variant", "hybrid-gpusim"), |b| {
        let s = GpuHybridScreener::new(hybrid_cfg);
        b.iter(|| black_box(s.screen(&population).conjunction_count()))
    });
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
