//! Atomic-hash-map ablation (DESIGN.md §5): insertion throughput vs load
//! factor (the paper's "twice the number of satellites" sizing rule is the
//! 2× point), plus MurmurHash3 cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kessler_grid::atomic_map::AtomicMap;
use kessler_grid::murmur::{fmix64, murmur3_x64_128};

fn bench_load_factor(c: &mut Criterion) {
    let n = 10_000usize;
    let keys: Vec<u64> = (0..n as u64).map(|i| i * 2_654_435_761 + 1).collect();
    let mut group = c.benchmark_group("atomic_map_insert");
    group.throughput(criterion::Throughput::Elements(n as u64));
    for factor in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("slots_per_key", factor), |b| {
            b.iter(|| {
                let map = AtomicMap::with_capacity(factor * n);
                for &k in &keys {
                    black_box(map.insert_or_get(k).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_concurrent_insert(c: &mut Criterion) {
    use rayon::prelude::*;
    let n = 10_000usize;
    let keys: Vec<u64> = (0..n as u64).map(|i| i * 2_654_435_761 + 1).collect();
    c.bench_function("atomic_map_insert_parallel_2x", |b| {
        b.iter(|| {
            let map = AtomicMap::with_capacity(2 * n);
            keys.par_iter().for_each(|&k| {
                map.insert_or_get(k).unwrap();
            });
            black_box(map.occupied())
        })
    });
}

fn bench_hash(c: &mut Criterion) {
    c.bench_function("fmix64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(fmix64(x))
        })
    });
    let data = vec![0xABu8; 64];
    c.bench_function("murmur3_x64_128_64B", |b| {
        b.iter(|| black_box(murmur3_x64_128(&data, 0)))
    });
}

criterion_group!(
    benches,
    bench_load_factor,
    bench_concurrent_insert,
    bench_hash
);
criterion_main!(benches);
