//! Kepler-solver ablation (DESIGN.md §5): Newton vs Danby vs contour on a
//! realistic sweep of mean anomalies and eccentricities — the paper's
//! propagation step runs one of these per (satellite, time) tuple.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kessler_orbits::{ContourSolver, DanbySolver, KeplerSolver, MarkleySolver, NewtonSolver};

fn workload() -> Vec<(f64, f64)> {
    // 4096 (M, e) pairs shaped like the LEO-dominated population: mostly
    // tiny eccentricities, a tail of HEO ones.
    (0..4096)
        .map(|i| {
            let m = (i as f64 * 0.618_033_988_75) % std::f64::consts::TAU;
            let e = if i % 16 == 0 {
                0.72
            } else {
                0.002 + 0.01 * ((i % 7) as f64)
            };
            (m, e)
        })
        .collect()
}

fn bench_solvers(c: &mut Criterion) {
    let work = workload();
    let mut group = c.benchmark_group("kepler_solver");
    group.throughput(criterion::Throughput::Elements(work.len() as u64));

    let newton = NewtonSolver::default();
    let danby = DanbySolver::default();
    let contour = ContourSolver::default();
    let contour_unpolished = ContourSolver {
        points: 16,
        polish: false,
    };
    let markley = MarkleySolver;

    group.bench_function(BenchmarkId::new("newton", work.len()), |b| {
        b.iter(|| {
            for &(m, e) in &work {
                black_box(newton.ecc_anomaly(m, e));
            }
        })
    });
    group.bench_function(BenchmarkId::new("danby", work.len()), |b| {
        b.iter(|| {
            for &(m, e) in &work {
                black_box(danby.ecc_anomaly(m, e));
            }
        })
    });
    group.bench_function(BenchmarkId::new("contour", work.len()), |b| {
        b.iter(|| {
            for &(m, e) in &work {
                black_box(contour.ecc_anomaly(m, e));
            }
        })
    });
    group.bench_function(BenchmarkId::new("contour_unpolished", work.len()), |b| {
        b.iter(|| {
            for &(m, e) in &work {
                black_box(contour_unpolished.ecc_anomaly(m, e));
            }
        })
    });
    group.bench_function(BenchmarkId::new("markley", work.len()), |b| {
        b.iter(|| {
            for &(m, e) in &work {
                black_box(markley.ecc_anomaly(m, e));
            }
        })
    });
    group.finish();
}

fn bench_batch_propagation(c: &mut Criterion) {
    use kessler_orbits::BatchPropagator;
    let population = kessler_bench::experiment_population(2_000);
    let propagator = BatchPropagator::new(&population);
    let mut out = vec![kessler_math::Vec3::ZERO; population.len()];
    c.bench_function("batch_propagation_2000", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            propagator.positions_into(black_box(t), &mut out);
        })
    });
}

fn bench_sgp4(c: &mut Criterion) {
    use kessler_orbits::sgp4::{MeanElements, Sgp4};
    let elements = MeanElements {
        mean_motion_rev_per_day: 15.5,
        eccentricity: 0.0012,
        inclination: 0.9,
        raan: 1.0,
        arg_perigee: 2.0,
        mean_anomaly: 3.0,
        bstar: 3.8e-5,
    };
    c.bench_function("sgp4_init", |b| {
        b.iter(|| black_box(Sgp4::new(&elements).unwrap()))
    });
    let prop = Sgp4::new(&elements).unwrap();
    c.bench_function("sgp4_propagate", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 0.1;
            black_box(prop.propagate(black_box(t)).unwrap())
        })
    });
    // Head-to-head with the two-body path the screeners default to.
    use kessler_orbits::propagator::PropagationConstants;
    use kessler_orbits::{ContourSolver, KeplerElements};
    let kep = KeplerElements::new(7_000.0, 0.0012, 0.9, 1.0, 2.0, 3.0).unwrap();
    let pc = PropagationConstants::from_elements(&kep);
    let solver = ContourSolver::default();
    c.bench_function("two_body_propagate", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 6.0;
            black_box(pc.propagate(black_box(t), &solver))
        })
    });
}

criterion_group!(benches, bench_solvers, bench_batch_propagation, bench_sgp4);
criterion_main!(benches);
