//! Spatial-grid benchmarks: the INS phase (insertion) and the CD
//! pair-extraction phase, including the full-vs-half neighbourhood
//! ablation (DESIGN.md §5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kessler_grid::grid::NeighborScan;
use kessler_grid::pairset::PairSet;
use kessler_grid::SpatialGrid;
use kessler_math::Vec3;
use kessler_orbits::BatchPropagator;

fn positions(n: usize) -> Vec<Vec3> {
    let population = kessler_bench::experiment_population(n);
    BatchPropagator::new(&population).positions(0.0)
}

fn bench_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_insert");
    for n in [2_000usize, 8_000] {
        let pos = positions(n);
        group.throughput(criterion::Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("insert_all", n), |b| {
            let grid = SpatialGrid::new(n, 9.8);
            b.iter(|| {
                grid.reset();
                grid.insert_all(black_box(&pos)).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_pair_extraction(c: &mut Criterion) {
    let n = 8_000usize;
    let pos = positions(n);
    let mut group = c.benchmark_group("grid_pairs");
    // Hybrid-sized cells create meaningful occupancy.
    for (name, scan) in [("half", NeighborScan::Half), ("full", NeighborScan::Full)] {
        group.bench_function(BenchmarkId::new("scan", name), |b| {
            let grid = SpatialGrid::new(n, 72.2);
            grid.insert_all(&pos).unwrap();
            b.iter(|| {
                let pairs = PairSet::with_capacity(1 << 16);
                grid.collect_candidate_pairs(0, scan, &pairs);
                black_box(pairs.len())
            })
        });
    }
    group.finish();
}

fn bench_reset(c: &mut Criterion) {
    let n = 8_000usize;
    let pos = positions(n);
    c.bench_function("grid_reset_8000", |b| {
        let grid = SpatialGrid::new(n, 9.8);
        grid.insert_all(&pos).unwrap();
        b.iter(|| grid.reset())
    });
}

fn bench_dense_vs_hash(c: &mut Criterion) {
    // The §IV-A ablation: dense 3-D array vs hash grid on a bounded box.
    use kessler_grid::DenseGrid;
    let n = 4_000usize;
    // Confine positions to a 2000 km box so the dense grid is allocatable.
    let pos: Vec<Vec3> = positions(n)
        .into_iter()
        .map(|p| {
            Vec3::new(
                p.x.rem_euclid(2_000.0) - 1_000.0,
                p.y.rem_euclid(2_000.0) - 1_000.0,
                p.z.rem_euclid(2_000.0) - 1_000.0,
            )
        })
        .collect();
    let mut group = c.benchmark_group("dense_vs_hash");
    group.bench_function("dense_insert_reset", |b| {
        let dense = DenseGrid::new(
            Vec3::new(-1_000.0, -1_000.0, -1_000.0),
            Vec3::new(2_000.0, 2_000.0, 2_000.0),
            10.0,
            n,
        )
        .unwrap();
        b.iter(|| {
            dense.reset(); // the paper's erase-per-iteration cost: O(cells)
            black_box(dense.insert_all(&pos));
        })
    });
    group.bench_function("hash_insert_reset", |b| {
        let hash = SpatialGrid::new(n, 10.0);
        b.iter(|| {
            hash.reset(); // O(2n slots)
            hash.insert_all(black_box(&pos)).unwrap();
        })
    });
    group.finish();
}

fn bench_pairset(c: &mut Criterion) {
    use kessler_grid::{CandidatePair, PairSet};
    use rayon::prelude::*;
    let n = 100_000u32;
    c.bench_function("pairset_insert_100k", |b| {
        b.iter(|| {
            let set = PairSet::with_capacity(1 << 18);
            (0..n).into_par_iter().for_each(|i| {
                set.insert(CandidatePair::new(
                    i % 5_000,
                    (i % 5_000) + 1 + i % 37,
                    i % 64,
                ));
            });
            black_box(set.len())
        })
    });
}

criterion_group!(
    benches,
    bench_insertion,
    bench_pair_extraction,
    bench_reset,
    bench_dense_vs_hash,
    bench_pairset
);
criterion_main!(benches);
