//! Host introspection for the Table-I analogue and the §V-C.3 TDP notes.

use serde::Serialize;

/// Description of the benchmark host.
#[derive(Debug, Clone, Serialize)]
pub struct SystemInfo {
    pub os: String,
    pub cpu_model: String,
    pub logical_cpus: usize,
    pub total_memory_gib: f64,
    pub rustc_like: String,
}

fn read_first_match(path: &str, key: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| l.split(':').nth(1))
        .map(|v| v.trim().to_string())
}

impl SystemInfo {
    pub fn collect() -> SystemInfo {
        let cpu_model = read_first_match("/proc/cpuinfo", "model name")
            .unwrap_or_else(|| "unknown".to_string());
        let mem_kib: f64 = read_first_match("/proc/meminfo", "MemTotal")
            .and_then(|v| v.split_whitespace().next().map(str::to_string))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        let os = std::fs::read_to_string("/etc/os-release")
            .ok()
            .and_then(|t| {
                t.lines().find(|l| l.starts_with("PRETTY_NAME=")).map(|l| {
                    l.trim_start_matches("PRETTY_NAME=")
                        .trim_matches('"')
                        .to_string()
                })
            })
            .unwrap_or_else(|| std::env::consts::OS.to_string());
        SystemInfo {
            os,
            cpu_model,
            logical_cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            total_memory_gib: mem_kib / (1024.0 * 1024.0),
            rustc_like: format!("rustc (edition 2021), {}", env!("CARGO_PKG_VERSION")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_reports_plausible_values() {
        let info = SystemInfo::collect();
        assert!(info.logical_cpus >= 1);
        assert!(!info.cpu_model.is_empty());
        // On Linux the memory read must succeed.
        if cfg!(target_os = "linux") {
            assert!(
                info.total_memory_gib > 0.1,
                "mem = {}",
                info.total_memory_gib
            );
        }
    }
}
