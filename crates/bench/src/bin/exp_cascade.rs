//! E-CASCADE — live fragmentation-cascade absorption.
//!
//! The batch experiments measure screening a *fixed* population; this one
//! measures the operational scenario the service exists for: a daemon is
//! holding a screened catalog mid-window when a breakup event injects a
//! debris cloud (≥ 2000 fragments by default), streamed over the wire one
//! ADD at a time while concurrent clients keep screening. Reported:
//!
//! - **absorption latency** — wall time from the first fragment ADD until
//!   the DELTA screen that folds the whole cloud into the warm
//!   conjunction set returns;
//! - **queue high-water** — deepest the screening queue got while ingest
//!   and the concurrent screens competed (from METRICS);
//! - **delta-screen phase timings** — where the absorption time went
//!   (propagation+insertion vs candidate extraction vs refinement);
//! - **identity** — the delta result must match a cold full screen of the
//!   post-cascade catalog exactly (the delta engine's contract).
//!
//! `--smoke` shrinks everything for CI. A JSON row goes to stdout and the
//! full report to `results_cascade.json` (override with `--json`).

use kessler_bench::{experiment_population, Args};
use kessler_core::ScreeningConfig;
use kessler_orbits::propagator::PropagationConstants;
use kessler_orbits::{ContourSolver, KeplerElements};
use kessler_population::Fragmentation;
use kessler_service::proto::ElementsSpec;
use kessler_service::{request, Client, Request, Server};
use serde::Serialize;
use std::thread;
use std::time::Instant;

#[derive(Serialize)]
struct CascadeReport {
    n_base: usize,
    n_fragments: usize,
    threshold_km: f64,
    span_seconds: f64,
    /// Wall time streaming the fragment ADDs, seconds.
    ingest_seconds: f64,
    /// First fragment ADD → DELTA response, seconds.
    absorption_seconds: f64,
    /// Fragment ADDs acknowledged per second during ingest.
    ingest_rate_hz: f64,
    /// Deepest the screening queue got (METRICS high-water).
    queue_highwater: usize,
    /// Concurrent full screens that completed during ingest.
    stress_screens: usize,
    /// Phase timings of the absorbing delta screen, milliseconds.
    delta_timings_ms: PhaseRow,
    /// Phase timings of the post-cascade cold full screen, milliseconds.
    full_timings_ms: PhaseRow,
    delta_variant: String,
    delta_conjunctions: usize,
    delta_colliding_pairs: usize,
    full_conjunctions: usize,
    full_colliding_pairs: usize,
    /// Delta result == cold full screen (counts and pair sets).
    identical: bool,
}

#[derive(Serialize)]
struct PhaseRow {
    insertion: f64,
    pair_extraction: f64,
    filters: f64,
    refinement: f64,
    total: f64,
}

impl PhaseRow {
    fn from_timings(t: &kessler_core::timing::PhaseTimings) -> PhaseRow {
        PhaseRow {
            insertion: t.insertion.as_secs_f64() * 1e3,
            pair_extraction: t.pair_extraction.as_secs_f64() * 1e3,
            filters: t.filters.as_secs_f64() * 1e3,
            refinement: t.refinement.as_secs_f64() * 1e3,
            total: t.total.as_secs_f64() * 1e3,
        }
    }
}

fn spec_of(el: &KeplerElements) -> ElementsSpec {
    ElementsSpec {
        a: el.semi_major_axis,
        e: el.eccentricity,
        incl: el.inclination,
        raan: el.raan,
        argp: el.arg_perigee,
        mean_anomaly: el.mean_anomaly,
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("--smoke");
    let n_base = args.usize_of("--n", if smoke { 48 } else { 1_500 });
    let n_fragments = args.usize_of("--fragments", if smoke { 64 } else { 2_000 });
    let threshold = args.f64_of("--threshold", 5.0);
    let span = args.f64_of("--span", if smoke { 60.0 } else { 120.0 });
    let stress = args.usize_of("--stress-screens", if smoke { 1 } else { 3 });
    let delta_v = args.f64_of("--delta-v", 0.05);

    println!(
        "E-CASCADE — fragmentation-cascade absorption ({n_base} base satellites, \
         {n_fragments} fragments, {threshold} km / {span} s window{})",
        if smoke { ", smoke mode" } else { "" }
    );

    // A daemon over the grid pipeline, ephemeral port, in-process.
    let config = ScreeningConfig::grid_defaults(threshold, span);
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn().expect("spawn server");
    let mut client = Client::connect(addr).expect("connect");

    // Base catalog + warm screen, then slide mid-window so the cascade
    // arrives into an already-advanced horizon (the operational case).
    let population = experiment_population(n_base);
    for (id, el) in population.iter().enumerate() {
        let response = client
            .send(&Request::Add {
                id: id as u64,
                elements: spec_of(el),
            })
            .expect("ADD base");
        assert!(response.ok, "ADD {id}: {:?}", response.error);
    }
    let warm = client
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .expect("warm screen summary");
    println!(
        "  warm screen: {} conjunctions in {:.1} ms",
        warm.conjunctions,
        warm.timings.total.as_secs_f64() * 1e3
    );
    let advance = client
        .send(&Request::Advance { dt: span / 3.0 })
        .expect("ADVANCE");
    assert!(advance.ok, "ADVANCE: {:?}", advance.error);

    // The debris cloud: the first catalog satellite breaks up at its
    // current state. Generation is all-or-nothing since the shortfall fix,
    // so a short cloud is a hard error here, never a silent under-stress.
    let parent = PropagationConstants::from_elements(&population[0])
        .propagate(0.0, &ContourSolver::default());
    let cloud = Fragmentation {
        fragments: n_fragments,
        delta_v_sigma: delta_v,
        seed: 0xCA5CADE,
    }
    .generate_from_state(parent)
    .expect("fragment cloud generation (parent should be deep in the viable domain)");

    // Concurrent pressure: screens racing the ingest on their own
    // connections, so the queue high-water metric reflects real contention.
    let stress_threads: Vec<_> = (0..stress)
        .map(|k| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("stress connect");
                let r = c
                    .send_tagged(&Request::Screen, &format!("stress-{k}"))
                    .expect("stress SCREEN");
                r.ok as usize
            })
        })
        .collect();

    // Stream the cascade, one ADD per line, timed end to end.
    let ingest_start = Instant::now();
    for (i, el) in cloud.iter().enumerate() {
        let response = client
            .send(&Request::Add {
                id: (n_base + i) as u64,
                elements: spec_of(el),
            })
            .expect("ADD fragment");
        assert!(response.ok, "ADD fragment {i}: {:?}", response.error);
    }
    let ingest_seconds = ingest_start.elapsed().as_secs_f64();
    let stress_done: usize = stress_threads
        .into_iter()
        .map(|t| t.join().expect("stress thread"))
        .sum();

    // The absorbing delta: fold every pending fragment into the warm set.
    let delta = client
        .send(&Request::Delta)
        .expect("DELTA")
        .screen
        .expect("delta summary");
    let absorption_seconds = ingest_start.elapsed().as_secs_f64();
    assert_eq!(delta.n_satellites, n_base + n_fragments);

    // Contract check: a cold full screen of the same catalog must agree.
    let full = client
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .expect("full summary");
    let identical =
        delta.conjunctions == full.conjunctions && delta.colliding_pairs == full.colliding_pairs;

    let metrics = client
        .send(&Request::Metrics)
        .expect("METRICS")
        .metrics
        .expect("metrics snapshot");

    drop(client);
    let response = request(addr, &Request::Shutdown).expect("SHUTDOWN");
    assert!(response.ok);
    handle.shutdown();

    let report = CascadeReport {
        n_base,
        n_fragments,
        threshold_km: threshold,
        span_seconds: span,
        ingest_seconds,
        absorption_seconds,
        ingest_rate_hz: n_fragments as f64 / ingest_seconds.max(1e-9),
        queue_highwater: metrics.queue_highwater,
        stress_screens: stress_done,
        delta_timings_ms: PhaseRow::from_timings(&delta.timings),
        full_timings_ms: PhaseRow::from_timings(&full.timings),
        delta_variant: delta.variant.clone(),
        delta_conjunctions: delta.conjunctions,
        delta_colliding_pairs: delta.colliding_pairs,
        full_conjunctions: full.conjunctions,
        full_colliding_pairs: full.colliding_pairs,
        identical,
    };

    println!(
        "  ingest: {} fragments in {:.1} ms ({:.0} ADD/s), queue high-water {}",
        n_fragments,
        ingest_seconds * 1e3,
        report.ingest_rate_hz,
        report.queue_highwater
    );
    println!(
        "  absorption: {:.1} ms first-ADD→DELTA ({} variant: {:.1} ms, \
         INS {:.1} ms / CD {:.1} ms / REF {:.1} ms)",
        absorption_seconds * 1e3,
        report.delta_variant,
        report.delta_timings_ms.total,
        report.delta_timings_ms.insertion,
        report.delta_timings_ms.pair_extraction,
        report.delta_timings_ms.refinement
    );
    println!(
        "  delta vs cold full: {} vs {} conjunctions, {} vs {} pairs — {}",
        report.delta_conjunctions,
        report.full_conjunctions,
        report.delta_colliding_pairs,
        report.full_colliding_pairs,
        if identical { "identical" } else { "MISMATCH" }
    );

    let row = serde_json::to_string(&report).expect("report serialises");
    println!("{row}");
    let path = args.value_of("--json").unwrap_or("results_cascade.json");
    let pretty = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(path, pretty).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("(wrote JSON report to {path})");

    assert!(
        identical,
        "delta screen diverged from the cold full screen — the delta \
         engine's equality contract is broken"
    );
}
