//! E-MOD — Eq. 3/4: re-fit the Extra-P conjunction-count model
//! `c' = K · n^α · s^β · t^γ · d^δ` on *our* measured candidate-entry
//! counts, sweeping population size, step size, span and threshold, and
//! compare the exponents with the paper's.
//!
//! Paper: grid `c' = 2.32e-9 · n² · s^(4/3) · t · d^(7/4)` (Eq. 3),
//!        hybrid `c' = 2.14e-9 · n² · s^(5/3) · t · d` (Eq. 4).

use kessler_bench::{experiment_population, maybe_write_json, Args};
use kessler_core::{GridScreener, HybridScreener, Screener, ScreeningConfig};
use kessler_math::stats::fit_power_law;
use serde::Serialize;

#[derive(Serialize)]
struct ModelFit {
    variant: String,
    coefficient: f64,
    exp_n: f64,
    exp_s: f64,
    exp_t: f64,
    exp_d: f64,
    r_squared: f64,
    observations: usize,
}

fn sweep(variant: &str, args: &Args) -> ModelFit {
    let sizes = args.usize_list_of("--sizes", &[500, 1_000, 2_000]);
    let steps: Vec<f64> = match variant {
        "grid" => vec![1.0, 2.0, 4.0],
        _ => vec![4.0, 9.0],
    };
    let spans = [300.0, 600.0];
    let thresholds = [1.0, 2.0, 5.0];

    let mut rows = Vec::new();
    let mut ys = Vec::new();
    for &n in &sizes {
        let population = experiment_population(n);
        for &s in &steps {
            for &t in &spans {
                for &d in &thresholds {
                    let mut cfg = match variant {
                        "grid" => ScreeningConfig::grid_defaults(d, t),
                        _ => ScreeningConfig::hybrid_defaults(d, t),
                    };
                    cfg.seconds_per_sample = s;
                    let report: kessler_core::ScreeningReport = match variant {
                        "grid" => GridScreener::new(cfg).screen(&population),
                        _ => HybridScreener::new(cfg).screen(&population),
                    };
                    let c = report.candidate_entries;
                    if c > 0 {
                        rows.push(vec![n as f64, s, t, d]);
                        ys.push(c as f64);
                    }
                }
            }
        }
    }

    let fit = fit_power_law(&rows, &ys).expect("sweep produces a well-posed fit");
    ModelFit {
        variant: variant.to_string(),
        coefficient: fit.coefficient,
        exp_n: fit.exponents[0],
        exp_s: fit.exponents[1],
        exp_t: fit.exponents[2],
        exp_d: fit.exponents[3],
        r_squared: fit.r_squared,
        observations: ys.len(),
    }
}

fn main() {
    let args = Args::from_env();
    println!("Eq. 3/4 analogue — power-law re-fit of measured candidate-entry counts\n");
    println!(
        "{:<8} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "variant", "K", "n-exp", "s-exp", "t-exp", "d-exp", "R²", "obs"
    );

    let mut fits = Vec::new();
    for variant in ["grid", "hybrid"] {
        let fit = sweep(variant, &args);
        println!(
            "{:<8} {:>12.3e} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.3} {:>6}",
            fit.variant,
            fit.coefficient,
            fit.exp_n,
            fit.exp_s,
            fit.exp_t,
            fit.exp_d,
            fit.r_squared,
            fit.observations
        );
        fits.push(fit);
    }

    println!("\npaper reference exponents:");
    println!("  grid   (Eq. 3): K = 2.32e-9, n 2.00, s 1.33, t 1.00, d 1.75");
    println!("  hybrid (Eq. 4): K = 2.14e-9, n 2.00, s 1.67, t 1.00, d 1.00");
    println!("\n(K depends on the population density model and is not expected to match;");
    println!("the exponents' ordering — superlinear in n and s, linear in t — should.)");
    maybe_write_json(&args, &fits);
}
