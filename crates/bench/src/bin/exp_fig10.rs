//! E-F10 — Fig. 10a/b/c: runtime of every variant over population size.
//!
//! Defaults are laptop-scale (the Fig. 10a regime); pass the paper's sizes
//! explicitly to reproduce 10b/10c:
//!
//! ```text
//! cargo run --release -p kessler-bench --bin exp_fig10                     # 10a-scale
//! cargo run --release -p kessler-bench --bin exp_fig10 -- \
//!     --sizes 16000,32000,64000 --span 600                                 # 10b-scale
//! cargo run --release -p kessler-bench --bin exp_fig10 -- \
//!     --sizes 128000,256000 --no-legacy                                    # 10c-scale
//! ```

use kessler_bench::runner::{print_rows, run_once, RunRow};
use kessler_bench::{experiment_population, maybe_write_json, Args};

fn main() {
    let args = Args::from_env();
    let sizes = args.usize_list_of("--sizes", &[1_000, 2_000, 4_000]);
    let span = args.f64_of("--span", 300.0);
    let threshold = args.f64_of("--threshold", 2.0);
    let repeats = args.usize_of("--repeats", 1);
    let no_legacy = args.flag("--no-legacy");
    let no_gpusim = args.flag("--no-gpusim");

    let mut variants = vec!["grid", "hybrid"];
    if !no_legacy {
        variants.insert(0, "legacy");
    }
    if args.flag("--with-sieve") {
        // The smart-sieve comparison variant (O(pairs · steps), §II).
        variants.insert(variants.len() - 2, "sieve");
    }
    if !no_gpusim {
        variants.push("grid-gpusim");
        variants.push("hybrid-gpusim");
    }

    println!(
        "Fig. 10 analogue — runtime vs population size (d = {threshold} km, span = {span} s, {repeats} repeat(s))\n"
    );

    let mut rows: Vec<RunRow> = Vec::new();
    for &n in &sizes {
        let population = experiment_population(n);
        for label in &variants {
            let mut best: Option<RunRow> = None;
            for _ in 0..repeats {
                let (row, _) = run_once(label, &population, threshold, span, None);
                best = Some(match best {
                    Some(b) if b.seconds <= row.seconds => b,
                    _ => row,
                });
            }
            let row = best.unwrap();
            println!(
                "n = {:>7}  {:<15} {:>10.3} s  ({} conjunctions)",
                n, row.variant, row.seconds, row.conjunctions
            );
            rows.push(row);
        }
        // Per-size speedup summary relative to the legacy run (if present).
        if let Some(legacy) = rows
            .iter()
            .filter(|r| r.n == n && r.variant == "legacy")
            .map(|r| r.seconds)
            .next()
        {
            for r in rows.iter().filter(|r| r.n == n && r.variant != "legacy") {
                println!(
                    "           {:<15} {:>9.1}× vs legacy",
                    r.variant,
                    legacy / r.seconds
                );
            }
        }
        println!();
    }

    println!("full series:");
    print_rows(&rows);
    println!("\npaper shape to compare against: legacy grows super-linearly (O(n²) pairs);");
    println!("grid/hybrid grow near-linearly until refinement dominates; hybrid beats grid");
    println!("when memory admits the larger cells; the crossover vs legacy sits at a few");
    println!("thousand objects (≈4000 in the paper's Fig. 10a).");
    maybe_write_json(&args, &rows);
}
