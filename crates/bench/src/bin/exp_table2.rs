//! E-T2 — Table II: value ranges of the generated Kepler elements.
//! Regenerates the table by measuring the actual min/max of every element
//! over a large draw and checking them against the specified ranges.

use kessler_bench::{experiment_population, maybe_write_json, Args};
use serde::Serialize;
use std::f64::consts::{PI, TAU};

#[derive(Serialize)]
struct RangeRow {
    element: String,
    specified: String,
    observed_min: f64,
    observed_max: f64,
    in_range: bool,
}

fn main() {
    let args = Args::from_env();
    let n = args.usize_of("--n", 50_000);
    let pop = experiment_population(n);

    let minmax = |f: &dyn Fn(&kessler_orbits::KeplerElements) -> f64| -> (f64, f64) {
        pop.iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), el| {
                let v = f(el);
                (lo.min(v), hi.max(v))
            })
    };

    let (a_lo, a_hi) = minmax(&|e| e.semi_major_axis);
    let (e_lo, e_hi) = minmax(&|e| e.eccentricity);
    let (i_lo, i_hi) = minmax(&|e| e.inclination);
    let (r_lo, r_hi) = minmax(&|e| e.raan);
    let (w_lo, w_hi) = minmax(&|e| e.arg_perigee);
    let (m_lo, m_hi) = minmax(&|e| e.mean_anomaly);

    let rows = vec![
        RangeRow {
            element: "Semi-major axis [km]".into(),
            specified: "from distribution".into(),
            observed_min: a_lo,
            observed_max: a_hi,
            in_range: a_lo > 6_378.0,
        },
        RangeRow {
            element: "Eccentricity".into(),
            specified: "from distribution".into(),
            observed_min: e_lo,
            observed_max: e_hi,
            in_range: (0.0..1.0).contains(&e_lo) && e_hi < 1.0,
        },
        RangeRow {
            element: "Inclination [rad]".into(),
            specified: "0 – π".into(),
            observed_min: i_lo,
            observed_max: i_hi,
            in_range: i_lo >= 0.0 && i_hi <= PI,
        },
        RangeRow {
            element: "RAAN [rad]".into(),
            specified: "0 – 2π".into(),
            observed_min: r_lo,
            observed_max: r_hi,
            in_range: r_lo >= 0.0 && r_hi < TAU,
        },
        RangeRow {
            element: "Argument of perigee [rad]".into(),
            specified: "0 – 2π".into(),
            observed_min: w_lo,
            observed_max: w_hi,
            in_range: w_lo >= 0.0 && w_hi < TAU,
        },
        RangeRow {
            element: "Mean anomaly [rad]".into(),
            specified: "0 – 2π".into(),
            observed_min: m_lo,
            observed_max: m_hi,
            in_range: m_lo >= 0.0 && m_hi < TAU,
        },
    ];

    println!("Table II analogue — element ranges over {n} generated satellites\n");
    println!(
        "{:<28} {:<18} {:>14} {:>14} {:>8}",
        "Kepler element", "specified", "observed min", "observed max", "ok"
    );
    let mut all_ok = true;
    for r in &rows {
        all_ok &= r.in_range;
        println!(
            "{:<28} {:<18} {:>14.6} {:>14.6} {:>8}",
            r.element,
            r.specified,
            r.observed_min,
            r.observed_max,
            if r.in_range { "✓" } else { "✗" }
        );
    }
    println!(
        "\n(true anomaly is derived from the mean anomaly at propagation time, as in the paper)"
    );
    println!("all ranges {}", if all_ok { "hold" } else { "VIOLATED" });
    maybe_write_json(&args, &rows);
    assert!(all_ok, "Table II ranges violated");
}
