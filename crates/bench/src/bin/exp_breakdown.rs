//! E-RTC — §V-C.1: relative time consumption per phase and variant.
//!
//! Paper reference values: hybrid GPU 68 % CD / 21 % INS / 9 % coplanarity;
//! hybrid CPU 87 % CD / 9 % INS / 3 % coplanarity; grid GPU 72 % CD /
//! 26 % INS; grid CPU 92 % CD / 7 % INS.
//!
//! With `--repeat R > 1` every variant is run R times and the JSON rows
//! additionally carry per-phase quantile digests (p50/p90/p99 over the
//! repeats), aggregated with the same [`PhaseSeries`] histograms the
//! service metrics use.

use kessler_bench::runner::run_once;
use kessler_bench::{experiment_population, maybe_write_json, Args};
use kessler_core::{PhaseSeries, PhaseSummaries};
use serde::Serialize;

#[derive(Serialize)]
struct BreakdownRow {
    variant: String,
    ins_pct: f64,
    cd_pct: f64,
    filters_pct: f64,
    total_s: f64,
    /// Per-phase quantiles over the repeats; present when `--repeat > 1`.
    #[serde(skip_serializing_if = "Option::is_none")]
    phases: Option<PhaseSummaries>,
}

fn main() {
    let args = Args::from_env();
    let n = args.usize_of("--n", 4_000);
    let span = args.f64_of("--span", 300.0);
    let threshold = args.f64_of("--threshold", 2.0);
    let repeat = args.usize_of("--repeat", 1).max(1);
    let population = experiment_population(n);

    println!(
        "§V-C.1 analogue — relative time consumption ({n} satellites, {span} s span, \
         {repeat} repeat(s))\n"
    );
    println!(
        "{:<15} {:>8} {:>8} {:>12} {:>10}",
        "variant", "INS %", "CD %", "filters %", "total [s]"
    );

    let mut rows = Vec::new();
    for label in ["grid", "hybrid", "grid-gpusim", "hybrid-gpusim"] {
        let mut series = PhaseSeries::default();
        let mut last = None;
        for _ in 0..repeat {
            let (_, report) = run_once(label, &population, threshold, span, None);
            series.record(&report.timings);
            last = Some(report);
        }
        let report = last.expect("at least one repeat");
        // Percentages come from the last repeat; the quantile digests
        // below aggregate all of them.
        let (ins, cd, fil) = report.timings.breakdown();
        println!(
            "{:<15} {:>8.1} {:>8.1} {:>12.1} {:>10.3}",
            report.variant,
            ins * 100.0,
            cd * 100.0,
            fil * 100.0,
            report.timings.total.as_secs_f64()
        );
        if repeat > 1 {
            let digests = series.summaries();
            for (phase, digest) in [
                ("insertion", &digests.insertion),
                ("pair extraction", &digests.pair_extraction),
                ("refinement", &digests.refinement),
                ("total", &digests.total),
            ] {
                println!(
                    "    {:<18} p50 {:>9.3} ms   p90 {:>9.3} ms   p99 {:>9.3} ms",
                    phase, digest.p50, digest.p90, digest.p99
                );
            }
        }
        rows.push(BreakdownRow {
            variant: report.variant.clone(),
            ins_pct: ins * 100.0,
            cd_pct: cd * 100.0,
            filters_pct: fil * 100.0,
            total_s: report.timings.total.as_secs_f64(),
            phases: (repeat > 1).then(|| series.summaries()),
        });
        // Kernel-level breakdown for the gpusim variants.
        if let Some(m) = &report.device_metrics {
            let total = m.total_kernel_time().as_secs_f64().max(1e-12);
            for (kernel, time) in &m.kernel_time {
                println!(
                    "    kernel {:<22} {:>6.1} % of kernel time",
                    kernel,
                    time.as_secs_f64() / total * 100.0
                );
            }
        }
    }

    println!("\npaper reference: grid CPU 92/7/0, hybrid CPU 87/9/3,");
    println!("                 grid GPU 72/26/0, hybrid GPU 68/21/9  (CD/INS/coplanar %)");
    maybe_write_json(&args, &rows);
}
