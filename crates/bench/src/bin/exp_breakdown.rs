//! E-RTC — §V-C.1: relative time consumption per phase and variant.
//!
//! Paper reference values: hybrid GPU 68 % CD / 21 % INS / 9 % coplanarity;
//! hybrid CPU 87 % CD / 9 % INS / 3 % coplanarity; grid GPU 72 % CD /
//! 26 % INS; grid CPU 92 % CD / 7 % INS.

use kessler_bench::runner::run_once;
use kessler_bench::{experiment_population, maybe_write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct BreakdownRow {
    variant: String,
    ins_pct: f64,
    cd_pct: f64,
    filters_pct: f64,
    total_s: f64,
}

fn main() {
    let args = Args::from_env();
    let n = args.usize_of("--n", 4_000);
    let span = args.f64_of("--span", 300.0);
    let threshold = args.f64_of("--threshold", 2.0);
    let population = experiment_population(n);

    println!("§V-C.1 analogue — relative time consumption ({n} satellites, {span} s span)\n");
    println!(
        "{:<15} {:>8} {:>8} {:>12} {:>10}",
        "variant", "INS %", "CD %", "filters %", "total [s]"
    );

    let mut rows = Vec::new();
    for label in ["grid", "hybrid", "grid-gpusim", "hybrid-gpusim"] {
        let (_, report) = run_once(label, &population, threshold, span, None);
        let (ins, cd, fil) = report.timings.breakdown();
        println!(
            "{:<15} {:>8.1} {:>8.1} {:>12.1} {:>10.3}",
            report.variant,
            ins * 100.0,
            cd * 100.0,
            fil * 100.0,
            report.timings.total.as_secs_f64()
        );
        rows.push(BreakdownRow {
            variant: report.variant.clone(),
            ins_pct: ins * 100.0,
            cd_pct: cd * 100.0,
            filters_pct: fil * 100.0,
            total_s: report.timings.total.as_secs_f64(),
        });
        // Kernel-level breakdown for the gpusim variants.
        if let Some(m) = &report.device_metrics {
            let total = m.total_kernel_time().as_secs_f64().max(1e-12);
            for (kernel, time) in &m.kernel_time {
                println!(
                    "    kernel {:<22} {:>6.1} % of kernel time",
                    kernel,
                    time.as_secs_f64() / total * 100.0
                );
            }
        }
    }

    println!("\npaper reference: grid CPU 92/7/0, hybrid CPU 87/9/3,");
    println!("                 grid GPU 72/26/0, hybrid GPU 68/21/9  (CD/INS/coplanar %)");
    maybe_write_json(&args, &rows);
}
