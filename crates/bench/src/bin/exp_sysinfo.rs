//! E-T1 — Table I analogue: the benchmark system, plus the §V-C.3
//! TDP-efficiency note (documented substitution: no power sensors in this
//! environment, so we print the paper's nominal-TDP methodology with this
//! host's data instead of measured power).

use kessler_bench::sysinfo::SystemInfo;
use kessler_bench::{maybe_write_json, Args};

fn main() {
    let args = Args::from_env();
    let info = SystemInfo::collect();

    println!("Table I analogue — benchmark system configuration");
    println!("{:<22} {}", "Operating system", info.os);
    println!("{:<22} {}", "CPU name", info.cpu_model);
    println!("{:<22} {}", "CPU threads", info.logical_cpus);
    println!("{:<22} {:.1} GiB", "System memory", info.total_memory_gib);
    println!("{:<22} {}", "Toolchain", info.rustc_like);
    println!();
    println!("Paper reference systems (Table I): AMD Ryzen 9 5950X (16C/32T, 64 GB),");
    println!("2× Intel Xeon Platinum 9242 (2×48C, 384 GB), NVIDIA RTX 3090 (24 GB).");
    println!();
    println!("§V-C.3 (TDP comparison) — substitution note: this environment exposes");
    println!("no power sensors and no GPU; the paper's methodology multiplies");
    println!("nominal TDP (105 W Ryzen, 2×350 W Xeon, 350 W RTX 3090) by measured");
    println!("runtime. The gpusim variants model the execution structure, not the");
    println!("energy, so E-TDP is reported as not reproducible on this host.");

    maybe_write_json(&args, &info);
}
