//! E-SCALE — the sharded daemon at the million-satellite mark.
//!
//! The paper's headline claim is screening catalogs "up to the
//! million-object scale"; this experiment drives the *service* there. A
//! sharded daemon (catalog partitioned by orbital regime) is booted
//! in-process and fed a synthetic mega-constellation one ADD at a time,
//! then screened cold and re-screened warm after a spread of updates.
//! Reported:
//!
//! - **ingest throughput** — ADD acknowledgements per second while the
//!   catalog grows to `--n` satellites;
//! - **per-shard screen/delta latency distributions** — each occupied
//!   shard's candidate-extraction step times (from METRICS), exposing
//!   regime imbalance;
//! - **boundary-pair overhead** — mirrored grid inserts and cross-shard
//!   candidate entries as a fraction of the totals;
//! - **snapshot bytes per mutation** — measured on a second, smaller
//!   persistent daemon (the WAL fsyncs every ADD, so the million-object
//!   phase runs ephemeral and the durability cost is sampled separately),
//!   sharded incremental (v2) against unsharded monolithic (v1).
//!
//! `--smoke` shrinks everything for CI. A JSON row goes to stdout and the
//! full report to `results_scale.json` (override with `--json`).

use kessler_bench::Args;
use kessler_core::metrics::HistogramSummary;
use kessler_core::ScreeningConfig;
use kessler_orbits::KeplerElements;
use kessler_population::synthetic_constellation;
use kessler_service::proto::ElementsSpec;
use kessler_service::{request, Client, PersistOptions, Request, Server, ServerOptions, ShardSpec};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct ScaleReport {
    n: usize,
    updates: usize,
    threshold_km: f64,
    span_seconds: f64,
    shard_count: u32,
    /// Wall time streaming the ADDs, seconds.
    ingest_seconds: f64,
    /// ADDs acknowledged per second during ingest.
    ingest_rate_hz: f64,
    /// Cold sharded full screen, milliseconds.
    full_screen_ms: f64,
    /// Warm sharded delta re-screen after `updates` updates, milliseconds.
    delta_screen_ms: f64,
    full_conjunctions: usize,
    delta_conjunctions: usize,
    /// Occupied shards in the full screen.
    occupied_shards: usize,
    /// Cross-shard candidate entries / total candidate entries.
    boundary_entry_fraction: f64,
    /// Mirrored grid inserts / total grid inserts.
    mirror_insert_fraction: f64,
    /// Per-shard extraction step times over full screens, µs.
    shard_full_step_us: BTreeMap<u32, HistogramSummary>,
    /// Per-shard extraction step times over delta screens, µs.
    shard_delta_step_us: BTreeMap<u32, HistogramSummary>,
    /// Durability phase: catalog size and mutation count.
    persist_n: usize,
    persist_mutations: usize,
    /// Mean snapshot bytes per acknowledged mutation, sharded incremental
    /// (v2) vs unsharded monolithic (v1) on the identical workload.
    sharded_bytes_per_mutation: f64,
    monolithic_bytes_per_mutation: f64,
    /// Dirty shards per incremental snapshot (quantiles).
    dirty_shards_per_snapshot: Option<HistogramSummary>,
}

fn spec_of(el: &KeplerElements) -> ElementsSpec {
    ElementsSpec {
        a: el.semi_major_axis,
        e: el.eccentricity,
        incl: el.inclination,
        raan: el.raan,
        argp: el.arg_perigee,
        mean_anomaly: el.mean_anomaly,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kessler-exp-scale-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Ingest, screen, mutate and delta-screen a catalog against a persistent
/// daemon; return total snapshot bytes per acknowledged mutation.
fn durability_bytes_per_mutation(
    population: &[KeplerElements],
    mutations: usize,
    config: ScreeningConfig,
    shards: Option<ShardSpec>,
    snapshot_every: u64,
    tag: &str,
) -> (f64, Option<HistogramSummary>) {
    let dir = temp_dir(tag);
    let options = ServerOptions {
        persist: Some(PersistOptions {
            dir: dir.clone(),
            snapshot_every,
            keep_snapshots: 2,
            shards: None,
        }),
        shards,
        ..ServerOptions::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, options).expect("bind persistent");
    let addr = server.local_addr();
    let handle = server.spawn().expect("spawn persistent server");
    let mut client = Client::connect(addr).expect("connect");

    let mut acked = 0usize;
    for (id, el) in population.iter().enumerate() {
        let r = client
            .send(&Request::Add {
                id: id as u64,
                elements: spec_of(el),
            })
            .expect("ADD");
        assert!(r.ok, "ADD {id}: {:?}", r.error);
        acked += 1;
    }
    let r = client.send(&Request::Screen).expect("SCREEN");
    assert!(r.ok);
    acked += 1;
    for j in 0..mutations {
        let idx = (j * 9973) % population.len();
        let el = &population[idx];
        let r = client
            .send(&Request::Update {
                id: idx as u64,
                elements: ElementsSpec {
                    a: el.semi_major_axis + 0.4,
                    mean_anomaly: el.mean_anomaly + 0.2,
                    ..spec_of(el)
                },
            })
            .expect("UPDATE");
        assert!(r.ok, "UPDATE {idx}: {:?}", r.error);
        acked += 1;
        if j % 16 == 15 {
            let r = client.send(&Request::Delta).expect("DELTA");
            assert!(r.ok);
            acked += 1;
        }
    }
    let metrics = client
        .send(&Request::Metrics)
        .expect("METRICS")
        .metrics
        .expect("metrics snapshot");
    drop(client);
    let r = request(addr, &Request::Shutdown).expect("SHUTDOWN");
    assert!(r.ok);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let total_snapshot_bytes = metrics
        .snapshot_bytes
        .as_ref()
        .map(|h| h.mean * h.count as f64)
        .unwrap_or(0.0);
    (
        total_snapshot_bytes / acked as f64,
        metrics.dirty_shards_per_snapshot,
    )
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("--smoke");
    let n = args.usize_of("--n", if smoke { 2_000 } else { 1_000_000 });
    let updates = args.usize_of("--updates", if smoke { 64 } else { 1_024 });
    let threshold = args.f64_of("--threshold", 5.0);
    let span = args.f64_of("--span", if smoke { 60.0 } else { 120.0 });
    let persist_n = args.usize_of("--persist-n", if smoke { 400 } else { 20_000 });
    let persist_mutations = args.usize_of("--persist-updates", if smoke { 64 } else { 512 });
    let spec = ShardSpec::default();

    println!(
        "E-SCALE — sharded daemon at n = {n} ({} shards, {threshold} km / {span} s window{})",
        spec.shard_count(),
        if smoke { ", smoke mode" } else { "" }
    );

    // Phase 1: the scale run. Ephemeral daemon — every ADD is one
    // fsync-free round-trip, so ingest throughput measures the catalog
    // and shard bookkeeping, not the disk.
    let config = ScreeningConfig::grid_defaults(threshold, span);
    let options = ServerOptions {
        shards: Some(spec),
        ..ServerOptions::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, options).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = server.spawn().expect("spawn server");
    let mut client = Client::connect(addr).expect("connect");

    let population = synthetic_constellation(n, 0x5CA1E);
    let ingest_start = Instant::now();
    for (id, el) in population.iter().enumerate() {
        let response = client
            .send(&Request::Add {
                id: id as u64,
                elements: spec_of(el),
            })
            .expect("ADD");
        assert!(response.ok, "ADD {id}: {:?}", response.error);
    }
    let ingest_seconds = ingest_start.elapsed().as_secs_f64();
    let ingest_rate_hz = n as f64 / ingest_seconds.max(1e-9);
    println!("  ingest: {n} satellites in {ingest_seconds:.1} s ({ingest_rate_hz:.0} ADD/s)");

    // Cold sharded full screen.
    let full = client
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .expect("full summary");
    assert_eq!(full.n_satellites, n);
    let shard_summary = full
        .shards
        .clone()
        .expect("sharded daemon reports per-shard stats");
    let full_ms = full.timings.total.as_secs_f64() * 1e3;
    println!(
        "  full screen: {} conjunctions in {:.1} ms across {} occupied shards",
        full.conjunctions,
        full_ms,
        shard_summary.rows.len()
    );
    println!(
        "  boundary overhead: {} cross-shard entries ({:.2}% of {}), {} mirrored inserts \
         ({:.2}% of {})",
        shard_summary.boundary_entries,
        100.0 * shard_summary.boundary_entries as f64
            / (shard_summary
                .rows
                .iter()
                .map(|r| r.entries)
                .sum::<u64>()
                .max(1)) as f64,
        shard_summary.rows.iter().map(|r| r.entries).sum::<u64>(),
        shard_summary.mirrored_inserts,
        100.0 * shard_summary.mirrored_inserts as f64 / shard_summary.total_inserts.max(1) as f64,
        shard_summary.total_inserts,
    );

    // A spread of updates, then the warm delta re-screen.
    for j in 0..updates {
        let idx = (j * 9973) % n;
        let el = &population[idx];
        let response = client
            .send(&Request::Update {
                id: idx as u64,
                elements: ElementsSpec {
                    a: el.semi_major_axis + 0.4,
                    mean_anomaly: el.mean_anomaly + 0.2,
                    ..spec_of(el)
                },
            })
            .expect("UPDATE");
        assert!(response.ok, "UPDATE {idx}: {:?}", response.error);
    }
    let delta = client
        .send(&Request::Delta)
        .expect("DELTA")
        .screen
        .expect("delta summary");
    let delta_ms = delta.timings.total.as_secs_f64() * 1e3;
    println!(
        "  delta after {updates} updates: {} conjunctions in {:.1} ms ({} variant)",
        delta.conjunctions, delta_ms, delta.variant
    );

    let metrics = client
        .send(&Request::Metrics)
        .expect("METRICS")
        .metrics
        .expect("metrics snapshot");
    drop(client);
    let response = request(addr, &Request::Shutdown).expect("SHUTDOWN");
    assert!(response.ok);
    handle.shutdown();

    // Phase 2: durability cost on a smaller persistent catalog, sharded
    // incremental (v2) vs unsharded monolithic (v1) snapshots.
    let persist_pop = synthetic_constellation(persist_n, 0xD15C);
    let snapshot_every = (persist_n as u64 / 8).max(8);
    let (sharded_bpm, dirty_summary) = durability_bytes_per_mutation(
        &persist_pop,
        persist_mutations,
        config,
        Some(spec),
        snapshot_every,
        "v2",
    );
    let (monolithic_bpm, _) = durability_bytes_per_mutation(
        &persist_pop,
        persist_mutations,
        config,
        None,
        snapshot_every,
        "v1",
    );
    println!(
        "  durability (n = {persist_n}, {persist_mutations} updates): \
         {sharded_bpm:.0} snapshot bytes/mutation sharded vs {monolithic_bpm:.0} monolithic"
    );

    let total_entries: u64 = shard_summary.rows.iter().map(|r| r.entries).sum();
    let report = ScaleReport {
        n,
        updates,
        threshold_km: threshold,
        span_seconds: span,
        shard_count: shard_summary.shard_count,
        ingest_seconds,
        ingest_rate_hz,
        full_screen_ms: full_ms,
        delta_screen_ms: delta_ms,
        full_conjunctions: full.conjunctions,
        delta_conjunctions: delta.conjunctions,
        occupied_shards: shard_summary.rows.len(),
        boundary_entry_fraction: shard_summary.boundary_entries as f64
            / total_entries.max(1) as f64,
        mirror_insert_fraction: shard_summary.mirrored_inserts as f64
            / shard_summary.total_inserts.max(1) as f64,
        shard_full_step_us: metrics.shard_full_step_us,
        shard_delta_step_us: metrics.shard_delta_step_us,
        persist_n,
        persist_mutations,
        sharded_bytes_per_mutation: sharded_bpm,
        monolithic_bytes_per_mutation: monolithic_bpm,
        dirty_shards_per_snapshot: dirty_summary,
    };

    let row = serde_json::to_string(&report).expect("report serialises");
    println!("{row}");
    let path = args.value_of("--json").unwrap_or("results_scale.json");
    let pretty = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(path, pretty).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("(wrote JSON report to {path})");

    assert!(
        report.occupied_shards > 1,
        "the synthetic constellation must span more than one shard"
    );
}
