//! E-ACC — §V-D: accuracy comparison across variants on an identical
//! population: conjunction counts, colliding-pair counts, and the
//! missed/extra pair sets relative to the legacy baseline.
//!
//! Paper reference at 64 000 satellites: legacy 17 184 conjunctions,
//! grid 17 264, hybrid 17 242; the hybrid finds all legacy pairs (+30
//! more), the grid misses 5 (all within 50 m of the threshold) and finds
//! 35 more.

use kessler_bench::runner::run_once;
use kessler_bench::{experiment_population, maybe_write_json, Args};
use serde::Serialize;
use std::collections::HashSet;

#[derive(Serialize)]
struct AccuracyReport {
    n: usize,
    span_s: f64,
    legacy_conjunctions: usize,
    grid_conjunctions: usize,
    hybrid_conjunctions: usize,
    legacy_pairs: usize,
    grid_pairs: usize,
    hybrid_pairs: usize,
    grid_missed: Vec<(u32, u32)>,
    grid_extra: Vec<(u32, u32)>,
    hybrid_missed: Vec<(u32, u32)>,
    hybrid_extra: Vec<(u32, u32)>,
    gpusim_matches_cpu: bool,
}

fn sorted(v: HashSet<(u32, u32)>) -> Vec<(u32, u32)> {
    let mut v: Vec<_> = v.into_iter().collect();
    v.sort_unstable();
    v
}

fn main() {
    let args = Args::from_env();
    let n = args.usize_of("--n", 2_000);
    let span = args.f64_of("--span", 600.0);
    let threshold = args.f64_of("--threshold", 2.0);
    let population = experiment_population(n);

    println!("§V-D analogue — accuracy on an identical {n}-satellite population ({span} s)\n");

    let (_, legacy) = run_once("legacy", &population, threshold, span, None);
    let (_, grid) = run_once("grid", &population, threshold, span, None);
    let (_, hybrid) = run_once("hybrid", &population, threshold, span, None);
    let (_, grid_gpu) = run_once("grid-gpusim", &population, threshold, span, None);
    let (_, hybrid_gpu) = run_once("hybrid-gpusim", &population, threshold, span, None);

    println!(
        "{:<10} {:>14} {:>16}",
        "variant", "conjunctions", "colliding pairs"
    );
    for r in [&legacy, &grid, &hybrid] {
        println!(
            "{:<10} {:>14} {:>16}",
            r.variant,
            r.conjunction_count(),
            r.colliding_pairs().len()
        );
    }

    let lp = legacy.colliding_pairs();
    let gp = grid.colliding_pairs();
    let hp = hybrid.colliding_pairs();

    let grid_missed = sorted(lp.difference(&gp).copied().collect());
    let grid_extra = sorted(gp.difference(&lp).copied().collect());
    let hybrid_missed = sorted(lp.difference(&hp).copied().collect());
    let hybrid_extra = sorted(hp.difference(&lp).copied().collect());

    println!(
        "\nvs legacy: grid misses {} pairs, finds {} extra",
        grid_missed.len(),
        grid_extra.len()
    );
    println!(
        "           hybrid misses {} pairs, finds {} extra",
        hybrid_missed.len(),
        hybrid_extra.len()
    );
    if !grid_missed.is_empty() {
        println!("  grid missed: {grid_missed:?}");
    }
    if !hybrid_missed.is_empty() {
        println!("  hybrid missed: {hybrid_missed:?}");
    }

    // "the CPU and GPU implementations producing the same number".
    let gpusim_matches_cpu = grid.conjunction_count() == grid_gpu.conjunction_count()
        && hybrid.conjunction_count() == hybrid_gpu.conjunction_count();
    println!(
        "\nCPU vs gpusim consistency: grid {} = {}, hybrid {} = {} → {}",
        grid.conjunction_count(),
        grid_gpu.conjunction_count(),
        hybrid.conjunction_count(),
        hybrid_gpu.conjunction_count(),
        if gpusim_matches_cpu {
            "match"
        } else {
            "MISMATCH"
        }
    );

    println!("\npaper reference @64k: legacy 17 184 / grid 17 264 / hybrid 17 242 conjunctions;");
    println!("hybrid misses 0 pairs (+30 extra), grid misses 5 (+35 extra), misses all");
    println!("within 50 m of the 2 km threshold.");

    let report = AccuracyReport {
        n,
        span_s: span,
        legacy_conjunctions: legacy.conjunction_count(),
        grid_conjunctions: grid.conjunction_count(),
        hybrid_conjunctions: hybrid.conjunction_count(),
        legacy_pairs: lp.len(),
        grid_pairs: gp.len(),
        hybrid_pairs: hp.len(),
        grid_missed,
        grid_extra,
        hybrid_missed,
        hybrid_extra,
        gpusim_matches_cpu,
    };
    maybe_write_json(&args, &report);
}
