//! E-CPLX — §III-B complexity analysis, measured.
//!
//! The paper argues three regimes for the number of PCA/TCA checks:
//! * **best case** — all satellites far apart: zero pair checks, linear
//!   total work (insertion only);
//! * **worst case** — everything in one spot: quadratic (shown here with a
//!   single dense shell);
//! * **average case** — the hollow-sphere argument: pairs only arise
//!   *within* a shell; satellites in different hollow spheres never pair.
//!
//! This binary constructs each regime and measures candidate-entry counts
//! and runtime versus population size.

use kessler_bench::{maybe_write_json, Args};
use kessler_core::{GridScreener, Screener, ScreeningConfig};
use kessler_orbits::KeplerElements;
use serde::Serialize;
use std::f64::consts::TAU;

/// Best case: each satellite on its own well-separated shell.
fn separated(n: usize) -> Vec<KeplerElements> {
    (0..n)
        .map(|i| {
            KeplerElements::new(
                7_000.0 + 40.0 * i as f64, // 40 km shell spacing ≫ cell size
                0.0,
                0.9,
                (i as f64 * 2.39) % TAU,
                0.0,
                (i as f64 * 1.17) % TAU,
            )
            .unwrap()
        })
        .collect()
}

/// Dense single shell: every pair shares the shell (the §III-B quadratic
/// regime).
fn single_shell(n: usize) -> Vec<KeplerElements> {
    (0..n)
        .map(|i| {
            KeplerElements::new(
                7_000.0,
                0.0,
                0.2 + 2.7 * (i as f64 / n as f64),
                (i as f64 * 2.39) % TAU,
                0.0,
                (i as f64 * 1.17) % TAU,
            )
            .unwrap()
        })
        .collect()
}

/// Two disjoint hollow spheres with `n/2` satellites each.
fn two_shells(n: usize) -> Vec<KeplerElements> {
    let mut pop = single_shell(n / 2);
    pop.extend(single_shell(n - n / 2).into_iter().map(|mut el| {
        el.semi_major_axis = 8_500.0; // 1 500 km higher: disjoint shell
        el
    }));
    pop
}

#[derive(Serialize)]
struct Row {
    regime: &'static str,
    n: usize,
    candidate_entries: usize,
    seconds: f64,
}

fn main() {
    let args = Args::from_env();
    let sizes = args.usize_list_of("--sizes", &[250, 500, 1_000, 2_000]);
    let span = args.f64_of("--span", 120.0);

    println!("§III-B complexity regimes (grid variant, d = 2 km, span = {span} s)\n");
    println!(
        "{:<12} {:>7} {:>18} {:>12} {:>22}",
        "regime", "n", "candidate entries", "time [s]", "entries growth vs n/2"
    );

    let mut rows: Vec<Row> = Vec::new();
    type Maker = fn(usize) -> Vec<KeplerElements>;
    let regimes: [(&'static str, Maker); 3] = [
        ("separated", separated),
        ("one-shell", single_shell),
        ("two-shells", two_shells),
    ];
    for (regime, make) in regimes {
        let mut prev: Option<(usize, usize)> = None;
        for &n in &sizes {
            let pop = make(n);
            let report = GridScreener::new(ScreeningConfig::grid_defaults(2.0, span)).screen(&pop);
            let growth = match prev {
                Some((pn, pe)) if pe > 0 => {
                    format!(
                        "×{:.2} for ×{:.1} n",
                        report.candidate_entries as f64 / pe as f64,
                        n as f64 / pn as f64
                    )
                }
                _ => "—".to_string(),
            };
            println!(
                "{:<12} {:>7} {:>18} {:>12.3} {:>22}",
                regime,
                n,
                report.candidate_entries,
                report.timings.total.as_secs_f64(),
                growth
            );
            prev = Some((n, report.candidate_entries));
            rows.push(Row {
                regime,
                n,
                candidate_entries: report.candidate_entries,
                seconds: report.timings.total.as_secs_f64(),
            });
        }
        println!();
    }

    // Hollow-sphere check: inter-shell pairs must be zero.
    let n = *sizes.last().unwrap();
    let pop = two_shells(n);
    let report = GridScreener::new(ScreeningConfig::grid_defaults(2.0, span)).screen(&pop);
    let lower = n / 2;
    let cross_shell = report
        .conjunctions
        .iter()
        .filter(|c| (c.id_lo as usize) < lower && (c.id_hi as usize) >= lower)
        .count();
    println!("hollow-sphere argument: {cross_shell} cross-shell conjunctions (paper predicts 0)");

    println!("\npaper claims (§III-B): separated → zero checks (linear total work);");
    println!("one shell → quadratic within the shell; disjoint shells don't interact.");
    maybe_write_json(&args, &rows);
}
