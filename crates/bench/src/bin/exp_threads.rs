//! E-THR — §V-C.2: speedup of the grid and hybrid CPU variants over
//! worker-thread count. The paper reports maxima of 19× (grid) and 14×
//! (hybrid) at 32 threads on the Ryzen system.
//!
//! Note for single-core hosts: the sweep still runs, but every point
//! measures ≈ 1× — EXPERIMENTS.md records this hardware gate.

use kessler_bench::runner::run_once;
use kessler_bench::{experiment_population, maybe_write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct ThreadRow {
    variant: String,
    threads: usize,
    seconds: f64,
    speedup: f64,
    efficiency: f64,
}

fn main() {
    let args = Args::from_env();
    let n = args.usize_of("--n", 4_000);
    let span = args.f64_of("--span", 300.0);
    let threshold = args.f64_of("--threshold", 2.0);
    let max_threads = args.usize_of(
        "--max-threads",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
    );
    let population = experiment_population(n);

    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        counts.push(t);
        t *= 2;
    }
    if *counts.last().unwrap() != max_threads {
        counts.push(max_threads);
    }

    println!(
        "§V-C.2 analogue — thread scaling ({n} satellites, {span} s span, host has {} logical CPUs)\n",
        std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
    );
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>12}",
        "variant", "threads", "time [s]", "speedup", "efficiency"
    );

    let mut rows = Vec::new();
    for label in ["grid", "hybrid"] {
        let mut base = None;
        for &threads in &counts {
            let (row, _) = run_once(label, &population, threshold, span, Some(threads));
            let base_s = *base.get_or_insert(row.seconds);
            let speedup = base_s / row.seconds;
            let efficiency = speedup / threads as f64;
            println!(
                "{:<10} {:>8} {:>12.3} {:>10.2} {:>11.1}%",
                label,
                threads,
                row.seconds,
                speedup,
                efficiency * 100.0
            );
            rows.push(ThreadRow {
                variant: label.to_string(),
                threads,
                seconds: row.seconds,
                speedup,
                efficiency,
            });
        }
        println!();
    }

    println!("paper reference (32 threads, Ryzen 5950X): grid 19× (59 % efficiency),");
    println!("hybrid 14× (44 % efficiency) — the grid variant scales better because");
    println!("its runtime is dominated by the embarrassingly parallel CD phase.");
    maybe_write_json(&args, &rows);
}
