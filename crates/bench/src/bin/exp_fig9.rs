//! E-F9 — Fig. 9: the bivariate distribution of semi-major axis and
//! eccentricity of the generated population. Prints a 2-D density table
//! (rows: eccentricity bins, columns: semi-major-axis bins) as an ASCII
//! heat map plus the headline concentration statistics the paper calls out
//! (hotspot at a ≈ 7000 km, e ≈ 0.0025).

use kessler_bench::{experiment_population, maybe_write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Report {
    n: usize,
    sma_edges: Vec<f64>,
    ecc_edges: Vec<f64>,
    counts: Vec<Vec<u64>>,
    hotspot_fraction: f64,
    mode_sma_km: f64,
    mode_ecc: f64,
}

fn main() {
    let args = Args::from_env();
    let n = args.usize_of("--n", 20_000);
    let population = experiment_population(n);

    // Focus region of Fig. 9: LEO semi-major axes and small eccentricities.
    let sma_lo = 6_600.0;
    let sma_hi = 8_200.0;
    let ecc_hi = 0.02;
    let (cols, rows) = (16usize, 10usize);
    let mut counts = vec![vec![0u64; cols]; rows];
    let mut outside = 0u64;

    for el in &population {
        let (a, e) = (el.semi_major_axis, el.eccentricity);
        if a < sma_lo || a >= sma_hi || e >= ecc_hi {
            outside += 1;
            continue;
        }
        let col = ((a - sma_lo) / (sma_hi - sma_lo) * cols as f64) as usize;
        let row = (e / ecc_hi * rows as f64) as usize;
        counts[row.min(rows - 1)][col.min(cols - 1)] += 1;
    }

    // Mode of the 2-D histogram.
    let (mut mode_row, mut mode_col, mut mode_count) = (0, 0, 0u64);
    for (r, row) in counts.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if v > mode_count {
                mode_count = v;
                mode_row = r;
                mode_col = c;
            }
        }
    }
    let mode_sma = sma_lo + (mode_col as f64 + 0.5) / cols as f64 * (sma_hi - sma_lo);
    let mode_ecc = (mode_row as f64 + 0.5) / rows as f64 * ecc_hi;
    let inside: u64 = counts.iter().flatten().sum();
    let hotspot_fraction = inside as f64 / n as f64;

    println!("Fig. 9 analogue — bivariate (semi-major axis, eccentricity) density");
    println!("population: {n} draws from the catalog KDE; showing the LEO focus window");
    println!("rows: eccentricity 0‥{ecc_hi}; cols: a {sma_lo}‥{sma_hi} km\n");

    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    let max = counts.iter().flatten().copied().max().unwrap_or(1).max(1);
    for (r, row) in counts.iter().enumerate().rev() {
        let e_label = (r as f64 + 0.5) / rows as f64 * ecc_hi;
        let line: String = row
            .iter()
            .map(|&v| {
                let idx = (v as f64 / max as f64 * (shades.len() - 1) as f64).round() as usize;
                shades[idx]
            })
            .collect();
        println!("e={e_label:<8.4} |{line}|");
    }
    let col_label: String = (0..cols)
        .map(|c| if c % 4 == 0 { '|' } else { ' ' })
        .collect();
    println!("{:>11}{}", "", col_label);
    println!("{:>11}a = {:.0} … {:.0} km", "", sma_lo, sma_hi);

    println!();
    println!("mode of the density: a ≈ {mode_sma:.0} km, e ≈ {mode_ecc:.4}");
    println!("paper (Fig. 9):      a ≈ 7000 km,   e ≈ 0.0025");
    println!(
        "fraction of the population inside the LEO focus window: {:.1} % ({} outside)",
        hotspot_fraction * 100.0,
        outside
    );

    let report = Fig9Report {
        n,
        sma_edges: (0..=cols)
            .map(|c| sma_lo + c as f64 / cols as f64 * (sma_hi - sma_lo))
            .collect(),
        ecc_edges: (0..=rows)
            .map(|r| r as f64 / rows as f64 * ecc_hi)
            .collect(),
        counts,
        hotspot_fraction,
        mode_sma_km: mode_sma,
        mode_ecc,
    };
    maybe_write_json(&args, &report);
}
