//! Shared harness for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation section has a
//! regenerating binary (see DESIGN.md §4):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `exp_sysinfo` | Table I (benchmark system) + §V-C.3 TDP notes |
//! | `exp_fig9` | Fig. 9 (bivariate (a, e) distribution) |
//! | `exp_table2` | Table II (element value ranges) |
//! | `exp_fig10` | Fig. 10a/b/c (runtime vs population size) |
//! | `exp_breakdown` | §V-C.1 (relative time consumption) |
//! | `exp_threads` | §V-C.2 (thread speedup) |
//! | `exp_accuracy` | §V-D (conjunction counts & pair differences) |
//! | `exp_model` | Eq. 3/4 (Extra-P conjunction-count model re-fit) |

pub mod runner;
pub mod sysinfo;

use kessler_orbits::KeplerElements;
use kessler_population::{PopulationConfig, PopulationGenerator};

/// The fixed seed all experiments share, so every variant sees the same
/// population (the requirement behind the §V-D accuracy comparison).
pub const EXPERIMENT_SEED: u64 = 0x2021_0408;

/// Generate the standard experiment population.
pub fn experiment_population(n: usize) -> Vec<KeplerElements> {
    PopulationGenerator::new(PopulationConfig {
        seed: EXPERIMENT_SEED,
        ..Default::default()
    })
    .generate(n)
}

/// Parse `--flag value`-style arguments (tiny, dependency-free).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn from_env() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    pub fn value_of(&self, flag: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    pub fn flag(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    pub fn usize_of(&self, flag: &str, default: usize) -> usize {
        self.value_of(flag)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {flag}")))
            .unwrap_or(default)
    }

    pub fn f64_of(&self, flag: &str, default: f64) -> f64 {
        self.value_of(flag)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {flag}")))
            .unwrap_or(default)
    }

    pub fn usize_list_of(&self, flag: &str, default: &[usize]) -> Vec<usize> {
        self.value_of(flag)
            .map(|v| {
                v.split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad list for {flag}"))
                    })
                    .collect()
            })
            .unwrap_or_else(|| default.to_vec())
    }
}

/// Write a JSON report next to stdout output when `--json <path>` is given.
pub fn maybe_write_json<T: serde::Serialize>(args: &Args, value: &T) {
    if let Some(path) = args.value_of("--json") {
        let json = serde_json::to_string_pretty(value).expect("report serialises");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("(wrote JSON report to {path})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_population_is_deterministic() {
        assert_eq!(experiment_population(100), experiment_population(100));
    }

    #[test]
    fn args_parse_values_and_flags() {
        let args = Args {
            raw: vec![
                "--sizes".into(),
                "100,200".into(),
                "--span".into(),
                "60.5".into(),
                "--no-legacy".into(),
            ],
        };
        assert_eq!(args.usize_list_of("--sizes", &[1]), vec![100, 200]);
        assert_eq!(args.f64_of("--span", 0.0), 60.5);
        assert!(args.flag("--no-legacy"));
        assert!(!args.flag("--missing"));
        assert_eq!(args.usize_of("--absent", 7), 7);
    }
}
