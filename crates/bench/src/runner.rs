//! Variant runner: maps variant labels to screeners and collects rows.

use kessler_core::{
    GpuGridScreener, GpuHybridScreener, GridScreener, HybridScreener, LegacyScreener, Screener,
    ScreeningConfig, ScreeningReport, SieveScreener,
};
use kessler_orbits::KeplerElements;
use serde::Serialize;

/// All variant labels in the paper's Fig. 10 ordering.
pub const ALL_VARIANTS: [&str; 6] = [
    "legacy",
    "sieve",
    "grid",
    "hybrid",
    "grid-gpusim",
    "hybrid-gpusim",
];

/// Build the screener for a label.
pub fn screener_for(
    label: &str,
    threshold_km: f64,
    span_seconds: f64,
    threads: Option<usize>,
) -> Box<dyn Screener> {
    let mut grid_cfg = ScreeningConfig::grid_defaults(threshold_km, span_seconds);
    grid_cfg.threads = threads;
    let mut hybrid_cfg = ScreeningConfig::hybrid_defaults(threshold_km, span_seconds);
    hybrid_cfg.threads = threads;
    match label {
        "legacy" => Box::new(LegacyScreener::new(grid_cfg)),
        "sieve" => {
            let mut cfg = SieveScreener::default_config(threshold_km, span_seconds);
            cfg.threads = threads;
            Box::new(SieveScreener::new(cfg))
        }
        "legacy-parallel" => Box::new(LegacyScreener::new(grid_cfg).parallel(true)),
        "grid" => Box::new(GridScreener::new(grid_cfg)),
        "hybrid" => Box::new(HybridScreener::new(hybrid_cfg)),
        "grid-gpusim" => Box::new(GpuGridScreener::new(grid_cfg)),
        "hybrid-gpusim" => Box::new(GpuHybridScreener::new(hybrid_cfg)),
        other => panic!("unknown variant `{other}`"),
    }
}

/// One measurement row (a point of a Fig. 10 series).
#[derive(Debug, Clone, Serialize)]
pub struct RunRow {
    pub variant: String,
    pub n: usize,
    pub seconds: f64,
    pub conjunctions: usize,
    pub colliding_pairs: usize,
    pub candidate_pairs: usize,
}

impl RunRow {
    pub fn from_report(report: &ScreeningReport) -> RunRow {
        RunRow {
            variant: report.variant.clone(),
            n: report.n_satellites,
            seconds: report.timings.total.as_secs_f64(),
            conjunctions: report.conjunction_count(),
            colliding_pairs: report.colliding_pairs().len(),
            candidate_pairs: report.candidate_pairs,
        }
    }
}

/// Run one variant on a population and return (row, full report).
pub fn run_once(
    label: &str,
    population: &[KeplerElements],
    threshold_km: f64,
    span_seconds: f64,
    threads: Option<usize>,
) -> (RunRow, ScreeningReport) {
    let screener = screener_for(label, threshold_km, span_seconds, threads);
    let report = screener.screen(population);
    (RunRow::from_report(&report), report)
}

/// Print rows as an aligned table.
pub fn print_rows(rows: &[RunRow]) {
    println!(
        "{:<15} {:>9} {:>12} {:>13} {:>14} {:>15}",
        "variant", "n", "time [s]", "conjunctions", "pairs", "candidates"
    );
    for r in rows {
        println!(
            "{:<15} {:>9} {:>12.3} {:>13} {:>14} {:>15}",
            r.variant, r.n, r.seconds, r.conjunctions, r.colliding_pairs, r.candidate_pairs
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment_population;

    #[test]
    fn every_variant_label_builds_and_runs() {
        let pop = experiment_population(40);
        for label in ALL_VARIANTS {
            let (row, report) = run_once(label, &pop, 2.0, 30.0, Some(1));
            assert_eq!(row.n, 40);
            assert_eq!(report.n_satellites, 40);
            assert!(row.seconds > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "unknown variant")]
    fn unknown_label_panics() {
        screener_for("warp-drive", 2.0, 60.0, None);
    }
}
