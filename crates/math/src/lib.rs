//! Numerics substrate for the `kessler` conjunction-screening workspace.
//!
//! This crate contains every piece of general-purpose mathematics the paper
//! relies on but that we implement from scratch rather than pulling in
//! external numeric dependencies:
//!
//! * [`Vec3`] / [`Mat3`] — small fixed-size linear algebra used for orbital
//!   state vectors and frame rotations.
//! * [`Complex`] — minimal complex arithmetic for the contour Kepler solver.
//! * [`erf`] — error function / normal CDF (collision-probability
//!   integrals).
//! * [`brent`] — Brent's bounded minimiser (the paper uses Boost's
//!   `brent_find_minima`; this is a faithful reimplementation).
//! * [`root`] — scalar root finding (bisection, Newton, Brent root finder).
//! * [`interval`] — closed time intervals with intersection/union, used by
//!   the classical time filter.
//! * [`angles`] — angle wrapping helpers.
//! * [`stats`] — summary statistics, histograms and log–log power-law fits
//!   (our stand-in for the Extra-P model fitting of §V-B).
//! * [`kde`] — a two-dimensional Gaussian kernel density estimator used to
//!   generate the synthetic satellite population of §V-A.

pub mod angles;
pub mod brent;
pub mod complex;
pub mod erf;
pub mod interval;
pub mod kde;
pub mod mat3;
pub mod root;
pub mod stats;
pub mod vec3;

pub use brent::{brent_minimize, BrentResult};
pub use complex::Complex;
pub use interval::Interval;
pub use mat3::Mat3;
pub use vec3::Vec3;
