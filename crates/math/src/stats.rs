//! Summary statistics, histograms, and power-law model fitting.
//!
//! The paper calibrates the conjunction hash-map size with an Extra-P model
//! (Eq. 3/4): `c' ≈ K · n^α · s^β · t^γ · d^δ`. We reproduce that workflow
//! with an in-repo multivariate log–log least-squares fit
//! ([`fit_power_law`]), plus the descriptive statistics used by the
//! experiment harness.

use serde::{Deserialize, Serialize};

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
}

/// Compute descriptive statistics. Returns `None` for empty input.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let count = values.len();
    let mean = values.iter().sum::<f64>() / count as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = if count % 2 == 1 {
        sorted[count / 2]
    } else {
        0.5 * (sorted[count / 2 - 1] + sorted[count / 2])
    };
    Some(Summary {
        count,
        mean,
        std_dev: var.sqrt(),
        min: sorted[0],
        max: sorted[count - 1],
        median,
    })
}

/// A fixed-width 1-D histogram over `[lo, hi]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
    /// Samples outside `[lo, hi]`.
    pub outliers: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    pub fn add(&mut self, x: f64) {
        if !(self.lo..=self.hi).contains(&x) || !x.is_finite() {
            self.outliers += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
        self.counts[idx.min(bins - 1)] += 1;
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.outliers
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

/// Result of a multivariate power-law fit `y = K · Π xᵢ^eᵢ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Multiplicative constant `K`.
    pub coefficient: f64,
    /// One exponent per predictor column.
    pub exponents: Vec<f64>,
    /// Coefficient of determination in log space.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Evaluate the fitted model at a predictor vector.
    pub fn predict(&self, xs: &[f64]) -> f64 {
        assert_eq!(xs.len(), self.exponents.len());
        self.coefficient
            * xs.iter()
                .zip(&self.exponents)
                .map(|(&x, &e)| x.powf(e))
                .product::<f64>()
    }
}

/// Fit `y = K · Π xᵢ^eᵢ` by ordinary least squares in log space.
///
/// `rows` holds one predictor vector per observation (all strictly positive);
/// `ys` the matching responses (strictly positive). Returns `None` when the
/// system is degenerate (too few observations or a singular normal matrix).
pub fn fit_power_law(rows: &[Vec<f64>], ys: &[f64]) -> Option<PowerLawFit> {
    let n = rows.len();
    if n == 0 || n != ys.len() {
        return None;
    }
    let k = rows[0].len();
    if rows.iter().any(|r| r.len() != k) || n < k + 1 {
        return None;
    }
    if rows.iter().flatten().any(|&x| x <= 0.0) || ys.iter().any(|&y| y <= 0.0) {
        return None;
    }

    // Design matrix: [1, ln x₁, …, ln x_k]; response: ln y.
    let dim = k + 1;
    let mut ata = vec![vec![0.0f64; dim]; dim];
    let mut atb = vec![0.0f64; dim];
    let log_row = |r: &Vec<f64>| -> Vec<f64> {
        let mut v = Vec::with_capacity(dim);
        v.push(1.0);
        v.extend(r.iter().map(|x| x.ln()));
        v
    };
    for (r, &y) in rows.iter().zip(ys) {
        let lr = log_row(r);
        let ly = y.ln();
        for i in 0..dim {
            for j in 0..dim {
                ata[i][j] += lr[i] * lr[j];
            }
            atb[i] += lr[i] * ly;
        }
    }

    let beta = solve_gauss(&mut ata, &mut atb)?;

    // R² in log space.
    let mean_ly = ys.iter().map(|y| y.ln()).sum::<f64>() / n as f64;
    let mut ss_tot = 0.0;
    let mut ss_res = 0.0;
    for (r, &y) in rows.iter().zip(ys) {
        let lr = log_row(r);
        let pred: f64 = lr.iter().zip(&beta).map(|(a, b)| a * b).sum();
        let ly = y.ln();
        ss_tot += (ly - mean_ly) * (ly - mean_ly);
        ss_res += (ly - pred) * (ly - pred);
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };

    Some(PowerLawFit {
        coefficient: beta[0].exp(),
        exponents: beta[1..].to_vec(),
        r_squared,
    })
}

/// Solve `A x = b` in place by Gaussian elimination with partial pivoting.
/// Returns `None` for (numerically) singular systems.
fn solve_gauss(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (x, &p) in rest[0].iter_mut().zip(pivot.iter()).skip(col) {
                *x -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summarize_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn summarize_odd_median() {
        let s = summarize(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 9.9, 10.0, -1.0, 11.0, f64::NAN] {
            h.add(x);
        }
        assert_eq!(h.counts[0], 2); // 0.5, 1.5
        assert_eq!(h.counts[4], 2); // 9.9, 10.0 (upper edge folds into last bin)
        assert_eq!(h.outliers, 3);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_bin_center() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn power_law_recovers_exact_model() {
        // y = 3.5 · a² · b^0.5
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in [1.0f64, 2.0, 4.0, 8.0] {
            for b in [1.0f64, 9.0, 16.0] {
                rows.push(vec![a, b]);
                ys.push(3.5 * a * a * b.sqrt());
            }
        }
        let fit = fit_power_law(&rows, &ys).unwrap();
        assert!((fit.coefficient - 3.5).abs() < 1e-9);
        assert!((fit.exponents[0] - 2.0).abs() < 1e-9);
        assert!((fit.exponents[1] - 0.5).abs() < 1e-9);
        assert!(fit.r_squared > 0.999_999);
        assert!((fit.predict(&[3.0, 4.0]) - 3.5 * 9.0 * 2.0).abs() < 1e-6);
    }

    #[test]
    fn power_law_rejects_nonpositive_inputs() {
        assert!(fit_power_law(&[vec![1.0], vec![-2.0], vec![1.0]], &[1.0, 2.0, 3.0]).is_none());
        assert!(fit_power_law(&[vec![1.0], vec![2.0], vec![3.0]], &[1.0, 0.0, 3.0]).is_none());
    }

    #[test]
    fn power_law_rejects_underdetermined() {
        assert!(fit_power_law(&[vec![1.0, 2.0]], &[3.0]).is_none());
    }

    #[test]
    fn paper_model_shape_is_recoverable() {
        // Generate data from the paper's grid-variant model (Eq. 3) and
        // check the fit recovers the exponents.
        let k = 2.32e-9;
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for n in [2000.0f64, 8000.0, 32000.0] {
            for s in [1.0f64, 4.0, 9.0] {
                for t in [600.0f64, 3600.0] {
                    for d in [1.0f64, 2.0, 5.0] {
                        rows.push(vec![n, s, t, d]);
                        ys.push(k * n * n * s.powf(4.0 / 3.0) * t * d.powf(7.0 / 4.0));
                    }
                }
            }
        }
        let fit = fit_power_law(&rows, &ys).unwrap();
        assert!((fit.exponents[0] - 2.0).abs() < 1e-6);
        assert!((fit.exponents[1] - 4.0 / 3.0).abs() < 1e-6);
        assert!((fit.exponents[2] - 1.0).abs() < 1e-6);
        assert!((fit.exponents[3] - 7.0 / 4.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn summary_bounds_hold(values in proptest::collection::vec(-1e6..1e6f64, 1..200)) {
            let s = summarize(&values).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.std_dev >= 0.0);
        }

        #[test]
        fn histogram_total_counts_every_sample(
            values in proptest::collection::vec(-20.0..20.0f64, 0..100)
        ) {
            let mut h = Histogram::new(-10.0, 10.0, 8);
            for &v in &values {
                h.add(v);
            }
            prop_assert_eq!(h.total(), values.len() as u64);
        }
    }
}
