//! 3×3 matrices, used for the perifocal → geocentric-equatorial rotation.
//!
//! The propagator precomputes one rotation matrix per satellite (part of the
//! "Kepler solver data" `a_k` in the paper's memory model, §V-B) so the hot
//! per-sample path is a single matrix–vector product.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// Row-major 3×3 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    pub rows: [[f64; 3]; 3],
}

impl Mat3 {
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Build from three row vectors.
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 {
            rows: [[r0.x, r0.y, r0.z], [r1.x, r1.y, r1.z], [r2.x, r2.y, r2.z]],
        }
    }

    /// Build from three column vectors.
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3 {
            rows: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// Rotation about the X axis by `angle` radians (right-handed).
    pub fn rot_x(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3 {
            rows: [[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]],
        }
    }

    /// Rotation about the Z axis by `angle` radians (right-handed).
    pub fn rot_z(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3 {
            rows: [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Matrix transpose. For pure rotations this is the inverse.
    pub fn transpose(self) -> Mat3 {
        let r = self.rows;
        Mat3 {
            rows: [
                [r[0][0], r[1][0], r[2][0]],
                [r[0][1], r[1][1], r[2][1]],
                [r[0][2], r[1][2], r[2][2]],
            ],
        }
    }

    /// Determinant.
    pub fn det(self) -> f64 {
        let r = self.rows;
        r[0][0] * (r[1][1] * r[2][2] - r[1][2] * r[2][1])
            - r[0][1] * (r[1][0] * r[2][2] - r[1][2] * r[2][0])
            + r[0][2] * (r[1][0] * r[2][1] - r[1][1] * r[2][0])
    }

    /// Row `i` as a vector.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.rows[i][0], self.rows[i][1], self.rows[i][2])
    }

    /// Column `j` as a vector.
    #[inline]
    pub fn col(&self, j: usize) -> Vec3 {
        Vec3::new(self.rows[0][j], self.rows[1][j], self.rows[2][j])
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        Mat3::from_cols(self * rhs.col(0), self * rhs.col(1), self * rhs.col(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_vec_close(a: Vec3, b: Vec3, eps: f64) {
        assert!(a.dist(b) <= eps, "expected {a:?} ≈ {b:?}");
    }

    #[test]
    fn identity_is_noop() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
    }

    #[test]
    fn rot_z_quarter_turn_maps_x_to_y() {
        assert_vec_close(Mat3::rot_z(FRAC_PI_2) * Vec3::X, Vec3::Y, 1e-15);
        assert_vec_close(Mat3::rot_z(PI) * Vec3::X, -Vec3::X, 1e-15);
    }

    #[test]
    fn rot_x_quarter_turn_maps_y_to_z() {
        assert_vec_close(Mat3::rot_x(FRAC_PI_2) * Vec3::Y, Vec3::Z, 1e-15);
    }

    #[test]
    fn rotation_determinant_is_one() {
        let m = Mat3::rot_z(0.37) * Mat3::rot_x(1.2) * Mat3::rot_z(-2.4);
        assert!((m.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_of_rotation_is_inverse() {
        let m = Mat3::rot_z(0.9) * Mat3::rot_x(0.4);
        let prod = m * m.transpose();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.rows[i][j] - expect).abs() < 1e-12);
            }
        }
    }

    proptest! {
        #[test]
        fn rotations_preserve_norm(angle in -10.0..10.0f64, x in -1e3..1e3f64,
                                   y in -1e3..1e3f64, z in -1e3..1e3f64) {
            let v = Vec3::new(x, y, z);
            let m = Mat3::rot_z(angle) * Mat3::rot_x(angle * 0.5);
            prop_assert!(((m * v).norm() - v.norm()).abs() < 1e-6 * v.norm().max(1.0));
        }

        #[test]
        fn matrix_product_matches_composition(a in -6.3..6.3f64, b in -6.3..6.3f64,
                                              x in -10.0..10.0f64, y in -10.0..10.0f64) {
            let v = Vec3::new(x, y, 1.0);
            let lhs = (Mat3::rot_z(a) * Mat3::rot_x(b)) * v;
            let rhs = Mat3::rot_z(a) * (Mat3::rot_x(b) * v);
            prop_assert!(lhs.dist(rhs) < 1e-9);
        }
    }
}
