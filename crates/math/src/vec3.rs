//! Three-dimensional vectors over `f64`.
//!
//! Deliberately small: only the operations the astrodynamics and grid code
//! actually need. `Vec3` is `Copy`, 24 bytes, and has no invariants, so the
//! screeners can keep satellite positions in plain `Vec<Vec3>` arrays
//! (structure-of-arrays style) and hand slices of them to rayon.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A vector in ℝ³, used for positions (km) and velocities (km/s).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm. Preferred in hot paths (no sqrt).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn dist_sq(self, rhs: Vec3) -> f64 {
        (self - rhs).norm_sq()
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, rhs: Vec3) -> f64 {
        self.dist_sq(rhs).sqrt()
    }

    /// Unit vector in the same direction.
    ///
    /// Returns `None` for vectors whose norm is not a strictly positive
    /// finite number, rather than silently producing NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    /// Angle between two vectors in `[0, π]`.
    ///
    /// Uses the `atan2(‖a×b‖, a·b)` form, which is numerically stable for
    /// nearly parallel and nearly antiparallel vectors (important for the
    /// coplanarity filter, which compares orbit normals that are often
    /// almost identical).
    pub fn angle_to(self, rhs: Vec3) -> f64 {
        let cross = self.cross(rhs).norm();
        let dot = self.dot(rhs);
        cross.atan2(dot)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Linear interpolation: `self + s * (rhs - self)`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, s: f64) -> Vec3 {
        self + (rhs - self) * s
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "expected {a} ≈ {b} (eps {eps})");
    }

    #[test]
    fn dot_of_orthogonal_axes_is_zero() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::Y.dot(Vec3::Z), 0.0);
        assert_eq!(Vec3::Z.dot(Vec3::X), 0.0);
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn norm_of_unit_vectors() {
        assert_eq!(Vec3::X.norm(), 1.0);
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
    }

    #[test]
    fn normalized_rejects_zero_and_nonfinite() {
        assert!(Vec3::ZERO.normalized().is_none());
        assert!(Vec3::new(f64::NAN, 0.0, 0.0).normalized().is_none());
        assert!(Vec3::new(f64::INFINITY, 0.0, 0.0).normalized().is_none());
        let n = Vec3::new(0.0, 0.0, -2.0).normalized().unwrap();
        assert_eq!(n, -Vec3::Z);
    }

    #[test]
    fn angle_between_axes_is_right_angle() {
        assert_close(
            Vec3::X.angle_to(Vec3::Y),
            std::f64::consts::FRAC_PI_2,
            1e-15,
        );
        assert_close(Vec3::X.angle_to(-Vec3::X), std::f64::consts::PI, 1e-15);
        assert_close(Vec3::X.angle_to(Vec3::X), 0.0, 1e-15);
    }

    #[test]
    fn angle_is_stable_for_nearly_parallel_vectors() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 1e-9, 0.0);
        let ang = a.angle_to(b);
        assert_close(ang, 1e-9, 1e-15);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.0, 7.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        let c = -1e6..1e6f64;
        (c.clone(), c.clone(), c).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn cross_is_orthogonal_to_operands(a in arb_vec3(), b in arb_vec3()) {
            let c = a.cross(b);
            // Tolerance scales with magnitudes involved.
            let scale = (a.norm() * b.norm()).max(1.0);
            prop_assert!(c.dot(a).abs() <= 1e-6 * scale * a.norm().max(1.0));
            prop_assert!(c.dot(b).abs() <= 1e-6 * scale * b.norm().max(1.0));
        }

        #[test]
        fn triangle_inequality(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }

        #[test]
        fn dot_is_commutative(a in arb_vec3(), b in arb_vec3()) {
            prop_assert_eq!(a.dot(b), b.dot(a));
        }

        #[test]
        fn cross_is_anticommutative(a in arb_vec3(), b in arb_vec3()) {
            let ab = a.cross(b);
            let ba = b.cross(a);
            prop_assert_eq!(ab, -ba);
        }

        #[test]
        fn normalized_has_unit_norm(a in arb_vec3()) {
            if let Some(n) = a.normalized() {
                prop_assert!((n.norm() - 1.0).abs() < 1e-12);
            }
        }

        #[test]
        fn dist_is_symmetric(a in arb_vec3(), b in arb_vec3()) {
            prop_assert_eq!(a.dist(b), b.dist(a));
        }
    }
}
