//! Two-dimensional Gaussian kernel density estimation.
//!
//! The paper's synthetic population (§V-A, Fig. 9) draws (semi-major axis,
//! eccentricity) pairs from a *bivariate KDE* of the real 2021 satellite
//! catalog. We implement the estimator ourselves: given anchor points, the
//! density is a mixture of axis-aligned Gaussian kernels whose bandwidths
//! follow Scott's rule; sampling picks a random anchor and perturbs it by
//! the kernel.

use rand_like::UniformSource;

/// Minimal abstraction over a uniform random source so this crate does not
/// depend on `rand` itself (the population crate adapts `rand::Rng` to it).
pub mod rand_like {
    /// Source of uniform variates in `[0, 1)`.
    pub trait UniformSource {
        fn next_uniform(&mut self) -> f64;
    }
}

/// A bivariate Gaussian KDE over anchor points `(x, y)`.
#[derive(Debug, Clone)]
pub struct Kde2d {
    anchors: Vec<(f64, f64)>,
    bandwidth: (f64, f64),
}

impl Kde2d {
    /// Build a KDE with bandwidths from Scott's rule:
    /// `h_j = σ_j · n^(−1/6)` for 2-D data.
    ///
    /// Returns `None` if fewer than 2 anchors are supplied or a marginal has
    /// zero variance (bandwidth would degenerate); callers with degenerate
    /// data should use [`Kde2d::with_bandwidth`].
    pub fn from_anchors(anchors: Vec<(f64, f64)>) -> Option<Kde2d> {
        if anchors.len() < 2 {
            return None;
        }
        let n = anchors.len() as f64;
        let mean_x = anchors.iter().map(|a| a.0).sum::<f64>() / n;
        let mean_y = anchors.iter().map(|a| a.1).sum::<f64>() / n;
        let var_x = anchors.iter().map(|a| (a.0 - mean_x).powi(2)).sum::<f64>() / n;
        let var_y = anchors.iter().map(|a| (a.1 - mean_y).powi(2)).sum::<f64>() / n;
        if var_x <= 0.0 || var_y <= 0.0 {
            return None;
        }
        let factor = n.powf(-1.0 / 6.0);
        Some(Kde2d {
            anchors,
            bandwidth: (var_x.sqrt() * factor, var_y.sqrt() * factor),
        })
    }

    /// Build a KDE with explicit kernel bandwidths.
    pub fn with_bandwidth(anchors: Vec<(f64, f64)>, hx: f64, hy: f64) -> Option<Kde2d> {
        if anchors.is_empty() || hx <= 0.0 || hy <= 0.0 {
            return None;
        }
        Some(Kde2d {
            anchors,
            bandwidth: (hx, hy),
        })
    }

    pub fn bandwidth(&self) -> (f64, f64) {
        self.bandwidth
    }

    pub fn anchor_count(&self) -> usize {
        self.anchors.len()
    }

    /// Evaluate the density at `(x, y)`.
    pub fn density(&self, x: f64, y: f64) -> f64 {
        let (hx, hy) = self.bandwidth;
        let norm = 1.0 / (self.anchors.len() as f64 * std::f64::consts::TAU * hx * hy);
        let sum: f64 = self
            .anchors
            .iter()
            .map(|&(ax, ay)| {
                let dx = (x - ax) / hx;
                let dy = (y - ay) / hy;
                (-0.5 * (dx * dx + dy * dy)).exp()
            })
            .sum();
        norm * sum
    }

    /// Draw one sample: pick an anchor uniformly, then add Gaussian kernel
    /// noise (Box–Muller from two uniforms).
    pub fn sample<R: UniformSource>(&self, rng: &mut R) -> (f64, f64) {
        let idx =
            ((rng.next_uniform() * self.anchors.len() as f64) as usize).min(self.anchors.len() - 1);
        let (ax, ay) = self.anchors[idx];
        let (gx, gy) = gaussian_pair(rng);
        (ax + self.bandwidth.0 * gx, ay + self.bandwidth.1 * gy)
    }
}

/// Two independent standard normal variates via Box–Muller.
pub fn gaussian_pair<R: UniformSource>(rng: &mut R) -> (f64, f64) {
    // Guard against u1 == 0 (ln 0 = -inf).
    let mut u1 = rng.next_uniform();
    if u1 <= f64::MIN_POSITIVE {
        u1 = f64::MIN_POSITIVE;
    }
    let u2 = rng.next_uniform();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::rand_like::UniformSource;
    use super::*;

    /// Deterministic xorshift-based uniform source for tests.
    struct TestRng(u64);

    impl UniformSource for TestRng {
        fn next_uniform(&mut self) -> f64 {
            // xorshift64*
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            let v = x.wrapping_mul(0x2545F4914F6CDD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn cluster_anchors() -> Vec<(f64, f64)> {
        // Two clusters at (0,0) and (10,10).
        let mut v = Vec::new();
        for i in 0..50 {
            let o = (i as f64) * 0.01;
            v.push((o, -o));
            v.push((10.0 + o, 10.0 - o));
        }
        v
    }

    #[test]
    fn from_anchors_requires_two_points_and_variance() {
        assert!(Kde2d::from_anchors(vec![(1.0, 2.0)]).is_none());
        assert!(Kde2d::from_anchors(vec![(1.0, 2.0), (1.0, 3.0)]).is_none()); // zero x-variance
        assert!(Kde2d::from_anchors(vec![(1.0, 2.0), (2.0, 3.0)]).is_some());
    }

    #[test]
    fn with_bandwidth_validates_inputs() {
        assert!(Kde2d::with_bandwidth(vec![], 1.0, 1.0).is_none());
        assert!(Kde2d::with_bandwidth(vec![(0.0, 0.0)], 0.0, 1.0).is_none());
        assert!(Kde2d::with_bandwidth(vec![(0.0, 0.0)], 1.0, 1.0).is_some());
    }

    #[test]
    fn density_peaks_at_clusters() {
        let kde = Kde2d::from_anchors(cluster_anchors()).unwrap();
        let at_cluster = kde.density(0.25, -0.25);
        let between = kde.density(5.0, 5.0);
        assert!(
            at_cluster > 10.0 * between,
            "cluster density {at_cluster} should dominate mid-point {between}"
        );
    }

    #[test]
    fn density_integrates_to_roughly_one() {
        // Coarse Riemann sum over a generous bounding box.
        let kde = Kde2d::with_bandwidth(vec![(0.0, 0.0), (2.0, 1.0)], 0.5, 0.5).unwrap();
        let (mut sum, step) = (0.0, 0.05);
        let mut x = -5.0;
        while x < 7.0 {
            let mut y = -5.0;
            while y < 6.0 {
                sum += kde.density(x, y) * step * step;
                y += step;
            }
            x += step;
        }
        assert!((sum - 1.0).abs() < 0.02, "integral ≈ {sum}");
    }

    #[test]
    fn samples_concentrate_near_anchors() {
        // Explicit narrow bandwidth: with Scott's rule the two clusters 14
        // units apart inflate σ and the kernels legitimately overlap.
        let kde = Kde2d::with_bandwidth(cluster_anchors(), 0.5, 0.5).unwrap();
        let mut rng = TestRng(0x9E3779B97F4A7C15);
        let mut near = 0usize;
        let total = 2000;
        for _ in 0..total {
            let (x, y) = kde.sample(&mut rng);
            let d0 = ((x - 0.25).powi(2) + (y + 0.25).powi(2)).sqrt();
            let d1 = ((x - 10.25).powi(2) + (y - 9.75).powi(2)).sqrt();
            if d0 < 3.0 || d1 < 3.0 {
                near += 1;
            }
        }
        assert!(
            near > total * 9 / 10,
            "only {near}/{total} samples near clusters"
        );
    }

    #[test]
    fn gaussian_pair_has_zero_mean_unit_variance() {
        let mut rng = TestRng(42);
        let n = 20_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let (a, b) = gaussian_pair(&mut rng);
            sum += a + b;
            sum_sq += a * a + b * b;
        }
        let count = (2 * n) as f64;
        let mean = sum / count;
        let var = sum_sq / count - mean * mean;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
