//! Scalar root finding.
//!
//! Used by the orbital filters (locating true-anomaly window edges) and as
//! the reference Newton backend for Kepler's equation against which the
//! contour solver is validated.

/// Outcome of a root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootResult {
    pub root: f64,
    /// Residual `f(root)`.
    pub residual: f64,
    pub iterations: u32,
}

/// Error cases for bracketing root finders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign, so no root is bracketed.
    NotBracketed,
    /// The iteration budget was exhausted before reaching the tolerance.
    MaxIterations,
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NotBracketed => write!(f, "root is not bracketed by the interval"),
            RootError::MaxIterations => write!(f, "root finder exhausted its iteration budget"),
        }
    }
}

impl std::error::Error for RootError {}

/// Newton–Raphson iteration with a fallback bisection safeguard.
///
/// `f` returns `(value, derivative)`. Starting from `x0`, iterates until
/// `|f(x)| <= tol` or `max_iter` is reached. If the Newton step leaves the
/// optional `bounds`, the step is replaced by bisection toward the violated
/// bound, which keeps the iteration from diverging on poor initial guesses.
pub fn newton<F: FnMut(f64) -> (f64, f64)>(
    mut f: F,
    x0: f64,
    tol: f64,
    max_iter: u32,
    bounds: Option<(f64, f64)>,
) -> RootResult {
    let mut x = x0;
    let mut value = 0.0;
    for i in 0..max_iter {
        let (v, dv) = f(x);
        value = v;
        if v.abs() <= tol {
            return RootResult {
                root: x,
                residual: v,
                iterations: i,
            };
        }
        let mut step = if dv != 0.0 { v / dv } else { v.signum() * 0.5 };
        if !step.is_finite() {
            step = v.signum() * 0.5;
        }
        let mut next = x - step;
        if let Some((lo, hi)) = bounds {
            if next < lo {
                next = 0.5 * (x + lo);
            } else if next > hi {
                next = 0.5 * (x + hi);
            }
        }
        x = next;
    }
    RootResult {
        root: x,
        residual: value,
        iterations: max_iter,
    }
}

/// Bisection on a sign-changing interval. Robust but linear convergence.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: u32,
) -> Result<RootResult, RootError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(RootResult {
            root: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(RootResult {
            root: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed);
    }
    for i in 0..max_iter {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm.abs() <= tol || 0.5 * (b - a).abs() <= tol {
            return Ok(RootResult {
                root: mid,
                residual: fm,
                iterations: i + 1,
            });
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(RootError::MaxIterations)
}

/// Brent's root finder (inverse quadratic interpolation + secant + bisection).
///
/// This is the root-finding sibling of [`crate::brent::brent_minimize`]:
/// superlinear on smooth functions, never slower than bisection.
pub fn brent_root<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: u32,
) -> Result<RootResult, RootError> {
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(RootResult {
            root: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(RootResult {
            root: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed);
    }
    // Ensure |f(b)| <= |f(a)| so b is the best guess.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0f64;

    for i in 0..max_iter {
        if fb.abs() <= tol || (b - a).abs() <= tol {
            return Ok(RootResult {
                root: b,
                residual: fb,
                iterations: i,
            });
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let cond_outside = !((lo.min(b) < s) && (s < lo.max(b)));
        let cond_mflag = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond_dflag = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond_btol = mflag && (b - c).abs() < tol;
        let cond_dtol = !mflag && (c - d).abs() < tol;
        if cond_outside || cond_mflag || cond_dflag || cond_btol || cond_dtol {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn newton_solves_square_root() {
        let r = newton(|x| (x * x - 2.0, 2.0 * x), 1.0, 1e-14, 50, None);
        assert!((r.root - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn newton_with_bounds_survives_bad_derivative() {
        // f(x) = x³ - x has f'(0) regions that throw plain Newton around;
        // bounded Newton must stay inside [0.5, 2] and find the root at 1.
        let r = newton(
            |x| (x * x * x - x, 3.0 * x * x - 1.0),
            0.6,
            1e-13,
            100,
            Some((0.5, 2.0)),
        );
        assert!((r.root - 1.0).abs() < 1e-10, "root = {}", r.root);
    }

    #[test]
    fn bisect_finds_sign_change() {
        let r = bisect(|x| x.cos(), 0.0, 3.0, 1e-12, 100).unwrap();
        assert!((r.root - std::f64::consts::FRAC_PI_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_unbracketed_interval() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err(),
            RootError::NotBracketed
        );
    }

    #[test]
    fn brent_root_matches_known_root() {
        // x³ − 2x − 5 = 0 has root ≈ 2.0945514815423265 (Brent's own example).
        let r = brent_root(|x| x * x * x - 2.0 * x - 5.0, 2.0, 3.0, 1e-14, 100).unwrap();
        assert!((r.root - 2.094_551_481_542_326_5).abs() < 1e-10);
    }

    #[test]
    fn brent_root_handles_exact_endpoint_root() {
        let r = brent_root(|x| x - 1.0, 1.0, 2.0, 1e-14, 100).unwrap();
        assert_eq!(r.root, 1.0);
    }

    #[test]
    fn brent_root_rejects_unbracketed() {
        assert_eq!(
            brent_root(|x| x * x + 1.0, 0.0, 1.0, 1e-12, 50).unwrap_err(),
            RootError::NotBracketed
        );
    }

    proptest! {
        #[test]
        fn brent_root_finds_linear_roots(root in -1e3..1e3f64, slope in 0.01..1e3f64) {
            let r = brent_root(|x| slope * (x - root), root - 10.0, root + 17.0, 1e-12, 200)
                .unwrap();
            prop_assert!((r.root - root).abs() < 1e-6);
        }

        #[test]
        fn newton_converges_on_cubics(root in -10.0..10.0f64) {
            let f = move |x: f64| {
                let v = (x - root) * (x * x + 1.0);
                let dv = (x * x + 1.0) + (x - root) * 2.0 * x;
                (v, dv)
            };
            let r = newton(f, root + 0.5, 1e-12, 200, Some((root - 5.0, root + 5.0)));
            prop_assert!((r.root - root).abs() < 1e-6, "root {} vs {}", r.root, root);
        }
    }
}
