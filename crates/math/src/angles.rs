//! Angle wrapping and conversion helpers.
//!
//! Orbital-element arithmetic constantly normalises anomalies and nodes into
//! canonical ranges; getting the branch cuts right in one audited place
//! avoids subtle off-by-2π bugs in the filters.

use std::f64::consts::{PI, TAU};

/// Wrap an angle into `[0, 2π)`.
#[inline]
pub fn wrap_tau(angle: f64) -> f64 {
    let r = angle.rem_euclid(TAU);
    // rem_euclid can return TAU itself when `angle` is a tiny negative
    // number whose remainder rounds up; fold that back to 0.
    if r >= TAU {
        0.0
    } else {
        r
    }
}

/// Wrap an angle into `(−π, π]`.
#[inline]
pub fn wrap_pi(angle: f64) -> f64 {
    let r = wrap_tau(angle);
    if r > PI {
        r - TAU
    } else {
        r
    }
}

/// Smallest absolute angular separation between two angles, in `[0, π]`.
#[inline]
pub fn separation(a: f64, b: f64) -> f64 {
    wrap_pi(a - b).abs()
}

/// Degrees → radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * (PI / 180.0)
}

/// Radians → degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * (180.0 / PI)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wrap_tau_basic_cases() {
        assert_eq!(wrap_tau(0.0), 0.0);
        assert!((wrap_tau(TAU + 1.0) - 1.0).abs() < 1e-15);
        assert!((wrap_tau(-0.5) - (TAU - 0.5)).abs() < 1e-15);
        assert_eq!(wrap_tau(TAU), 0.0);
    }

    #[test]
    fn wrap_pi_basic_cases() {
        assert_eq!(wrap_pi(0.0), 0.0);
        assert!((wrap_pi(PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
        assert!((wrap_pi(-PI - 0.1) - (PI - 0.1)).abs() < 1e-12);
        assert_eq!(wrap_pi(PI), PI);
    }

    #[test]
    fn wrap_tau_handles_tiny_negative() {
        let r = wrap_tau(-1e-300);
        assert!((0.0..TAU).contains(&r), "r = {r}");
    }

    #[test]
    fn separation_across_wraparound() {
        assert!((separation(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
        assert!((separation(PI - 0.05, -PI + 0.05) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn degree_radian_round_trip() {
        for d in [-720.0, -90.0, 0.0, 45.0, 180.0, 359.9] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-10);
        }
    }

    proptest! {
        #[test]
        fn wrap_tau_is_in_range(a in -1e9..1e9f64) {
            let r = wrap_tau(a);
            prop_assert!((0.0..TAU).contains(&r), "r = {}", r);
        }

        #[test]
        fn wrap_pi_is_in_range(a in -1e9..1e9f64) {
            let r = wrap_pi(a);
            prop_assert!(r > -PI - 1e-12 && r <= PI + 1e-12);
        }

        #[test]
        fn wrap_preserves_angle_mod_tau(a in -1e6..1e6f64) {
            // sin/cos are invariant under wrapping. Tolerance accounts for
            // the catastrophic cancellation inherent in large reductions.
            prop_assert!((wrap_tau(a).sin() - a.sin()).abs() < 1e-6);
            prop_assert!((wrap_tau(a).cos() - a.cos()).abs() < 1e-6);
        }

        #[test]
        fn separation_is_symmetric_and_bounded(a in -100.0..100.0f64, b in -100.0..100.0f64) {
            prop_assert!((separation(a, b) - separation(b, a)).abs() < 1e-12);
            prop_assert!(separation(a, b) <= PI + 1e-12);
        }
    }
}
