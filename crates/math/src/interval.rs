//! Closed intervals on the real line, used as *time windows*.
//!
//! The classical time filter (§II, Hoots filter 3) produces per-satellite
//! true-anomaly windows that are converted to time windows modulo the
//! orbital period; two objects can only produce a conjunction while their
//! windows overlap. This module provides the interval algebra that the
//! filter composes: intersection, periodic unrolling, and union of window
//! sets.

use serde::{Deserialize, Serialize};

/// A closed interval `[start, end]`. Empty iff `start > end`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    pub start: f64,
    pub end: f64,
}

impl Interval {
    /// Create an interval; no ordering requirement is imposed so callers can
    /// represent "empty" naturally as `start > end`.
    #[inline]
    pub const fn new(start: f64, end: f64) -> Interval {
        Interval { start, end }
    }

    /// Length, or 0 for empty intervals.
    #[inline]
    pub fn length(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start > self.end
    }

    /// Whether `x` lies inside (closed bounds).
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.start <= x && x <= self.end
    }

    /// Intersection, empty if disjoint.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Whether the two intervals share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Clamp the interval to `bounds`.
    #[inline]
    pub fn clamp_to(&self, bounds: &Interval) -> Interval {
        self.intersect(bounds)
    }

    /// Grow symmetrically by `pad` on each side.
    #[inline]
    pub fn padded(&self, pad: f64) -> Interval {
        Interval::new(self.start - pad, self.end + pad)
    }

    /// Midpoint (meaningless for empty intervals).
    #[inline]
    pub fn center(&self) -> f64 {
        0.5 * (self.start + self.end)
    }

    /// Unroll a window defined modulo `period` across `span`, producing every
    /// concrete occurrence intersecting `span`.
    ///
    /// `self` is interpreted relative to phase 0 of the cycle and may
    /// straddle the cycle boundary (e.g. `[-0.1·P, 0.1·P]`).
    pub fn unroll_periodic(&self, period: f64, span: &Interval) -> Vec<Interval> {
        assert!(period > 0.0, "period must be positive");
        let mut out = Vec::new();
        if self.is_empty() || span.is_empty() {
            return out;
        }
        // First repetition index k such that self.end + k*period >= span.start.
        let k0 = ((span.start - self.end) / period).floor() as i64;
        let k1 = ((span.end - self.start) / period).ceil() as i64;
        for k in k0..=k1 {
            let shifted =
                Interval::new(self.start + k as f64 * period, self.end + k as f64 * period);
            let clipped = shifted.intersect(span);
            if !clipped.is_empty() {
                out.push(clipped);
            }
        }
        out
    }
}

/// Merge an unsorted collection of intervals into a minimal sorted disjoint
/// set. Empty inputs are dropped. Adjacent intervals whose gap is at most
/// `join_tol` are merged (the time filter uses this to fuse windows split by
/// floating-point jitter).
pub fn merge_intervals(mut intervals: Vec<Interval>, join_tol: f64) -> Vec<Interval> {
    intervals.retain(|iv| !iv.is_empty());
    intervals.sort_by(|a, b| a.start.total_cmp(&b.start));
    let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match out.last_mut() {
            Some(last) if iv.start <= last.end + join_tol => {
                last.end = last.end.max(iv.end);
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Pairwise intersection of two sorted disjoint window sets.
///
/// Linear two-pointer sweep; both inputs must be sorted by `start` (as
/// produced by [`merge_intervals`]).
pub fn intersect_sets(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let iv = a[i].intersect(&b[j]);
        if !iv.is_empty() {
            out.push(iv);
        }
        if a[i].end < b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_interval_properties() {
        let e = Interval::new(2.0, 1.0);
        assert!(e.is_empty());
        assert_eq!(e.length(), 0.0);
        assert!(!e.contains(1.5));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert!(a.intersect(&b).is_empty());
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn intersect_touching_endpoints() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        let i = a.intersect(&b);
        assert!(!i.is_empty());
        assert_eq!((i.start, i.end), (1.0, 1.0));
    }

    #[test]
    fn unroll_periodic_covers_span() {
        // Window [0, 1] each 10-second cycle, unrolled over [0, 35].
        let w = Interval::new(0.0, 1.0);
        let occurrences = w.unroll_periodic(10.0, &Interval::new(0.0, 35.0));
        assert_eq!(occurrences.len(), 4);
        assert_eq!(occurrences[0], Interval::new(0.0, 1.0));
        assert_eq!(occurrences[3], Interval::new(30.0, 31.0));
    }

    #[test]
    fn unroll_periodic_straddling_cycle_boundary() {
        // Window straddling phase 0: [-1, 1] mod 10 over [0, 20].
        let w = Interval::new(-1.0, 1.0);
        let occ = w.unroll_periodic(10.0, &Interval::new(0.0, 20.0));
        // Occurrences: [0,1] (k=0 clipped), [9,11], [19,20] (clipped).
        assert_eq!(occ.len(), 3);
        assert_eq!(occ[0], Interval::new(0.0, 1.0));
        assert_eq!(occ[1], Interval::new(9.0, 11.0));
        assert_eq!(occ[2], Interval::new(19.0, 20.0));
    }

    #[test]
    fn merge_overlapping_intervals() {
        let merged = merge_intervals(
            vec![
                Interval::new(5.0, 6.0),
                Interval::new(0.0, 2.0),
                Interval::new(1.5, 3.0),
                Interval::new(10.0, 9.0), // empty, dropped
            ],
            0.0,
        );
        assert_eq!(
            merged,
            vec![Interval::new(0.0, 3.0), Interval::new(5.0, 6.0)]
        );
    }

    #[test]
    fn merge_with_join_tolerance() {
        let merged = merge_intervals(vec![Interval::new(0.0, 1.0), Interval::new(1.05, 2.0)], 0.1);
        assert_eq!(merged, vec![Interval::new(0.0, 2.0)]);
    }

    #[test]
    fn intersect_sets_two_pointer() {
        let a = vec![Interval::new(0.0, 5.0), Interval::new(10.0, 15.0)];
        let b = vec![Interval::new(3.0, 11.0), Interval::new(14.0, 20.0)];
        let i = intersect_sets(&a, &b);
        assert_eq!(
            i,
            vec![
                Interval::new(3.0, 5.0),
                Interval::new(10.0, 11.0),
                Interval::new(14.0, 15.0)
            ]
        );
    }

    proptest! {
        #[test]
        fn intersection_is_subset(a0 in -100.0..100.0f64, a1 in -100.0..100.0f64,
                                  b0 in -100.0..100.0f64, b1 in -100.0..100.0f64) {
            let a = Interval::new(a0.min(a1), a0.max(a1));
            let b = Interval::new(b0.min(b1), b0.max(b1));
            let i = a.intersect(&b);
            if !i.is_empty() {
                prop_assert!(i.start >= a.start && i.end <= a.end);
                prop_assert!(i.start >= b.start && i.end <= b.end);
            }
        }

        #[test]
        fn merged_intervals_are_sorted_and_disjoint(
            raw in proptest::collection::vec((-100.0..100.0f64, 0.0..10.0f64), 0..40)
        ) {
            let ivs: Vec<Interval> = raw.iter()
                .map(|&(s, len)| Interval::new(s, s + len))
                .collect();
            let total_input: f64 = ivs.iter().map(Interval::length).sum();
            let merged = merge_intervals(ivs, 0.0);
            for w in merged.windows(2) {
                prop_assert!(w[0].end < w[1].start);
            }
            let total_merged: f64 = merged.iter().map(Interval::length).sum();
            // Merging can only reduce total measure (overlaps collapse).
            prop_assert!(total_merged <= total_input + 1e-9);
        }

        #[test]
        fn unrolled_occurrences_stay_in_span(start in -5.0..5.0f64, len in 0.0..3.0f64,
                                             period in 1.0..50.0f64,
                                             span_len in 0.0..200.0f64) {
            let w = Interval::new(start, start + len);
            let span = Interval::new(0.0, span_len);
            for occ in w.unroll_periodic(period, &span) {
                prop_assert!(occ.start >= span.start - 1e-9);
                prop_assert!(occ.end <= span.end + 1e-9);
                prop_assert!(!occ.is_empty());
            }
        }
    }
}
