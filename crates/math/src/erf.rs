//! Error function and normal CDF.
//!
//! Needed by the collision-probability integrator (`kessler-core`'s
//! conjunction assessment): the 2-D Gaussian integral over the combined
//! hard-body disk reduces to nested normal CDFs.
//!
//! `erf` uses the rational Chebyshev approximation of W. J. Cody (1969)
//! as popularised by Numerical Recipes' `erfc` kernel — absolute error
//! below 1.2·10⁻⁷, far tighter than the 1e-4-level accuracy collision
//! probabilities are quoted at.

/// Error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Chebyshev fit for erfc, valid for all z ≥ 0.
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_878),
            (1.0, 0.842_700_793),
            (1.5, 0.966_105_146),
            (2.0, 0.995_322_265),
            (3.0, 0.999_977_910),
        ];
        for (x, expect) in cases {
            assert!((erf(x) - expect).abs() < 2e-7, "erf({x}) = {}", erf(x));
            assert!((erf(-x) + expect).abs() < 2e-7, "erf(−{x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.0, -1.0, -0.1, 0.0, 0.3, 1.7, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        // The Chebyshev kernel's absolute error is ~1.2e-7 everywhere,
        // including at zero.
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.0) - 0.841_344_746).abs() < 2e-7);
        assert!((normal_cdf(-1.96) - 0.024_997_895).abs() < 2e-7);
        assert!(normal_cdf(8.0) > 0.999_999_999);
        assert!(normal_cdf(-8.0) < 1e-9);
    }

    proptest! {
        #[test]
        fn erf_is_odd_and_bounded(x in -6.0..6.0f64) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-10);
            prop_assert!(erf(x).abs() <= 1.0);
        }

        #[test]
        fn erf_is_monotone(a in -5.0..5.0f64, d in 0.001..1.0f64) {
            prop_assert!(erf(a + d) >= erf(a));
        }

        #[test]
        fn normal_cdf_symmetry(x in -6.0..6.0f64) {
            prop_assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-10);
        }
    }
}
