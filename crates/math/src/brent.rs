//! Brent's method for one-dimensional bounded minimisation.
//!
//! The paper computes each candidate pair's PCA/TCA by minimising the
//! inter-satellite distance over a time interval with Boost's
//! `brent_find_minima` (§IV-C). This module is a from-scratch
//! reimplementation of the same algorithm: golden-section search combined
//! with successive parabolic interpolation, guaranteed to converge on a
//! unimodal function and never worse than golden section on a multimodal
//! one.

/// Result of a bounded minimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrentResult {
    /// Abscissa of the located minimum.
    pub xmin: f64,
    /// Function value at `xmin`.
    pub fmin: f64,
    /// Number of function evaluations spent.
    pub evaluations: u32,
}

/// Golden ratio constant `(3 − √5)/2` used for golden-section steps.
const CGOLD: f64 = 0.381_966_011_250_105_1;

/// Minimise `f` on the closed interval `[a, b]` with Brent's method.
///
/// * `rel_tol` — relative tolerance on the abscissa; values below
///   `√ε ≈ 1.5e-8` cannot be honoured in `f64` and are clamped.
/// * `max_iter` — hard iteration cap (each iteration costs one evaluation).
///
/// Returns the best point found. If `a > b` the bounds are swapped, so the
/// caller can pass an interval in either orientation.
///
/// # Panics
/// Panics if either bound is non-finite.
pub fn brent_minimize<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    rel_tol: f64,
    max_iter: u32,
) -> BrentResult {
    assert!(
        a.is_finite() && b.is_finite(),
        "brent_minimize: non-finite bounds"
    );
    let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
    // Clamp the tolerance to what f64 can resolve.
    let tol = rel_tol.max(f64::EPSILON.sqrt());

    let mut x = lo + CGOLD * (hi - lo); // current best
    let mut w = x; // second best
    let mut v = x; // previous second best
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut evaluations = 1u32;

    let mut d: f64 = 0.0; // last step
    let mut e: f64 = 0.0; // step before last

    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let tol1 = tol * x.abs() + 1e-12;
        let tol2 = 2.0 * tol1;
        if (x - mid).abs() <= tol2 - 0.5 * (hi - lo) {
            break;
        }

        let mut use_golden = true;
        if e.abs() > tol1 {
            // Try a parabolic fit through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_prev = e;
            e = d;
            // Accept the parabolic step only if it falls inside the bounds
            // and represents a shrinking step size.
            if p.abs() < (0.5 * q * e_prev).abs() && p > q * (lo - x) && p < q * (hi - x) {
                d = p / q;
                let u = x + d;
                if u - lo < tol2 || hi - u < tol2 {
                    d = if mid > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < mid { hi - x } else { lo - x };
            d = CGOLD * e;
        }

        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = f(u);
        evaluations += 1;

        if fu <= fx {
            if u >= x {
                lo = x;
            } else {
                hi = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }

    BrentResult {
        xmin: x,
        fmin: fx,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_minimum_of_parabola() {
        let r = brent_minimize(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 10.0, 1e-10, 100);
        assert!((r.xmin - 2.5).abs() < 1e-7, "xmin = {}", r.xmin);
        assert!((r.fmin - 1.0).abs() < 1e-12);
    }

    #[test]
    fn handles_swapped_bounds() {
        let r = brent_minimize(|x| (x + 1.0).powi(2), 5.0, -5.0, 1e-10, 100);
        assert!((r.xmin + 1.0).abs() < 1e-7);
    }

    #[test]
    fn finds_minimum_of_nontrivial_smooth_function() {
        // f(x) = sin x + x²/10 has a single minimum near x ≈ -1.3063269…
        let r = brent_minimize(|x| x.sin() + x * x / 10.0, -3.0, 3.0, 1e-12, 200);
        let expected = -1.306_440_097_557_849;
        assert!(
            (r.xmin - expected).abs() < 1e-6,
            "xmin = {}, expected ≈ {expected}",
            r.xmin
        );
    }

    #[test]
    fn minimum_at_boundary_is_reported_near_boundary() {
        // Monotonically increasing on [1, 4]: minimum sits at the left edge.
        let r = brent_minimize(|x| x, 1.0, 4.0, 1e-10, 100);
        assert!(r.xmin - 1.0 < 1e-5, "xmin = {}", r.xmin);
    }

    #[test]
    fn respects_iteration_budget() {
        let r = brent_minimize(|x| (x - 0.123).powi(2), -1e9, 1e9, 1e-15, 5);
        // Budget of 5 iterations → at most 6 evaluations (initial + 5 steps).
        assert!(r.evaluations <= 6);
    }

    #[test]
    fn distance_squared_between_two_lines_matches_analytic_tca() {
        // Two satellites moving on straight lines (a good local model of a
        // conjunction): p1(t) = (t, 0, 0), p2(t) = (0, t - 3, 0) shifted so
        // that closest approach is at a known time.
        // d²(t) = t² + (t-3)² has its minimum at t = 1.5.
        let r = brent_minimize(|t| t * t + (t - 3.0) * (t - 3.0), 0.0, 3.0, 1e-12, 100);
        assert!((r.xmin - 1.5).abs() < 1e-8);
        assert!((r.fmin - 4.5).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_bounds() {
        brent_minimize(|x| x, f64::NAN, 1.0, 1e-8, 10);
    }

    proptest! {
        /// On a random parabola with the vertex inside the interval, Brent
        /// must locate the vertex to high accuracy.
        #[test]
        fn locates_parabola_vertex(center in -100.0..100.0f64,
                                   scale in 0.01..100.0f64,
                                   half_width in 1.0..50.0f64) {
            let lo = center - half_width;
            let hi = center + half_width;
            let r = brent_minimize(|x| scale * (x - center) * (x - center),
                                   lo, hi, 1e-12, 200);
            prop_assert!((r.xmin - center).abs() < 1e-5 * half_width.max(1.0),
                         "xmin {} vs center {}", r.xmin, center);
        }

        /// Brent starts from the golden-section point and only ever accepts
        /// improvements, so the reported minimum can never be worse than the
        /// function value at its own starting abscissa — even on multimodal
        /// functions where only a local minimum is guaranteed.
        #[test]
        fn fmin_not_worse_than_start_point(a in -50.0..0.0f64, b in 0.1..50.0f64) {
            let f = |x: f64| (x * 1.3).cos() + 0.01 * x * x;
            let r = brent_minimize(f, a, b, 1e-10, 200);
            let start = a + CGOLD * (b - a);
            prop_assert!(r.fmin <= f(start) + 1e-12);
        }
    }
}
