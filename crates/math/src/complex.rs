//! Minimal complex arithmetic for the contour Kepler solver.
//!
//! The "Kepler's Goat Herd" solver (Philcox, Goodman & Slepian 2021; the
//! paper's propagation backend, §IV-B) evaluates Kepler's function on a
//! circular contour in the complex plane. Only `+ - * /`, `exp(iθ)` and
//! `sin`/`cos` of complex arguments are needed, so we implement exactly
//! those instead of pulling in `num-complex`.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + i·im` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Complex {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Complex sine: `sin(x + iy) = sin x cosh y + i cos x sinh y`.
    #[inline]
    pub fn sin(self) -> Complex {
        let (sx, cx) = self.re.sin_cos();
        Complex::new(sx * self.im.cosh(), cx * self.im.sinh())
    }

    /// Complex cosine: `cos(x + iy) = cos x cosh y − i sin x sinh y`.
    #[inline]
    pub fn cos(self) -> Complex {
        let (sx, cx) = self.re.sin_cos();
        Complex::new(cx * self.im.cosh(), -sx * self.im.sinh())
    }

    /// True if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sq();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    fn close(a: Complex, b: Complex, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::real(-1.0));
    }

    #[test]
    fn cis_pi_is_minus_one() {
        assert!(close(Complex::cis(PI), Complex::real(-1.0), 1e-15));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.5, 4.0);
        assert!(close((a * b) / b, a, 1e-12));
    }

    #[test]
    fn complex_sin_matches_real_sin_on_real_axis() {
        for x in [-2.0, -0.5, 0.0, 0.7, 3.1] {
            let s = Complex::real(x).sin();
            assert!((s.re - x.sin()).abs() < 1e-15);
            assert_eq!(s.im, 0.0);
        }
    }

    #[test]
    fn sin_squared_plus_cos_squared_is_one() {
        let z = Complex::new(0.8, 0.3);
        let s = z.sin();
        let c = z.cos();
        let id = s * s + c * c;
        assert!(close(id, Complex::ONE, 1e-12));
    }

    proptest! {
        #[test]
        fn cis_has_unit_magnitude(theta in -100.0..100.0f64) {
            prop_assert!((Complex::cis(theta).abs() - 1.0).abs() < 1e-12);
        }

        #[test]
        fn conjugate_multiplication_gives_norm(re in -1e3..1e3f64, im in -1e3..1e3f64) {
            let z = Complex::new(re, im);
            let p = z * z.conj();
            prop_assert!((p.re - z.norm_sq()).abs() <= 1e-9 * z.norm_sq().max(1.0));
            prop_assert!(p.im.abs() <= 1e-9 * z.norm_sq().max(1.0));
        }

        #[test]
        fn addition_is_commutative(a in -1e6..1e6f64, b in -1e6..1e6f64,
                                   c in -1e6..1e6f64, d in -1e6..1e6f64) {
            let x = Complex::new(a, b);
            let y = Complex::new(c, d);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
