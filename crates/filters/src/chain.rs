//! The composed filter chain.
//!
//! The legacy baseline pushes **all** n(n−1)/2 pairs through this chain;
//! the hybrid variant pushes only the grid's candidate pairs (§III). Both
//! receive the same decision: excluded at some stage, coplanar (search by
//! sampling), or a set of time windows to search with Brent.

use crate::apsis::apsis_filter;
use crate::coplanar::{are_coplanar, DEFAULT_COPLANAR_TOLERANCE};
use crate::path::orbit_path_filter;
use crate::timefilter::time_filter;
use kessler_math::interval::Interval;
use kessler_orbits::KeplerElements;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Filter chain configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Screening threshold `d` in km (the paper evaluates with 2 km).
    pub threshold_km: f64,
    /// Extra padding added to the threshold inside the geometric filters to
    /// absorb the node-approximation error of the orbit-path filter, km.
    pub padding_km: f64,
    /// Angular tolerance of the coplanarity check, radians.
    pub coplanar_tolerance: f64,
}

impl FilterConfig {
    pub fn new(threshold_km: f64) -> FilterConfig {
        FilterConfig {
            threshold_km,
            padding_km: 15.0,
            coplanar_tolerance: DEFAULT_COPLANAR_TOLERANCE,
        }
    }

    /// Effective distance used by the exclusion filters.
    #[inline]
    pub fn padded_threshold(&self) -> f64 {
        self.threshold_km + self.padding_km
    }
}

/// Decision of the chain for one pair.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterDecision {
    /// Excluded by the apogee/perigee filter.
    ExcludedApsis,
    /// Excluded by the orbit-path filter.
    ExcludedPath,
    /// Excluded by the time filter (no simultaneous windows in the span).
    ExcludedTime,
    /// The planes are coplanar; node-based filters don't apply and the
    /// pair must be searched by time sampling.
    Coplanar,
    /// Kept, with the time windows (seconds past epoch) to search.
    Windows(Vec<Interval>),
}

/// Per-stage exclusion counters. All atomic so the chain can be shared
/// across rayon workers without locking.
#[derive(Debug, Default)]
pub struct FilterStats {
    pub tested: AtomicU64,
    pub excluded_apsis: AtomicU64,
    pub excluded_path: AtomicU64,
    pub excluded_time: AtomicU64,
    pub coplanar: AtomicU64,
    pub kept: AtomicU64,
}

/// A point-in-time snapshot of [`FilterStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStatsSnapshot {
    pub tested: u64,
    pub excluded_apsis: u64,
    pub excluded_path: u64,
    pub excluded_time: u64,
    pub coplanar: u64,
    pub kept: u64,
}

impl FilterStats {
    pub fn snapshot(&self) -> FilterStatsSnapshot {
        FilterStatsSnapshot {
            tested: self.tested.load(Ordering::Relaxed),
            excluded_apsis: self.excluded_apsis.load(Ordering::Relaxed),
            excluded_path: self.excluded_path.load(Ordering::Relaxed),
            excluded_time: self.excluded_time.load(Ordering::Relaxed),
            coplanar: self.coplanar.load(Ordering::Relaxed),
            kept: self.kept.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.tested.store(0, Ordering::Relaxed);
        self.excluded_apsis.store(0, Ordering::Relaxed);
        self.excluded_path.store(0, Ordering::Relaxed);
        self.excluded_time.store(0, Ordering::Relaxed);
        self.coplanar.store(0, Ordering::Relaxed);
        self.kept.store(0, Ordering::Relaxed);
    }
}

/// The classical filter chain.
pub struct FilterChain {
    pub config: FilterConfig,
    pub stats: FilterStats,
}

impl FilterChain {
    pub fn new(config: FilterConfig) -> FilterChain {
        FilterChain {
            config,
            stats: FilterStats::default(),
        }
    }

    /// Run the chain on one pair over the screening `span`
    /// (seconds past the common epoch).
    pub fn evaluate(
        &self,
        a: &KeplerElements,
        b: &KeplerElements,
        span: Interval,
    ) -> FilterDecision {
        self.stats.tested.fetch_add(1, Ordering::Relaxed);
        let padded = self.config.padded_threshold();

        // Stage 1: apogee/perigee.
        if !apsis_filter(a, b, padded) {
            self.stats.excluded_apsis.fetch_add(1, Ordering::Relaxed);
            return FilterDecision::ExcludedApsis;
        }

        // Stage 2: coplanarity split. Coplanar pairs bypass the node-based
        // filters (§IV-C: "For the coplanar ones, the procedure is the same
        // as for the grid-based variant").
        if are_coplanar(a, b, self.config.coplanar_tolerance) {
            self.stats.coplanar.fetch_add(1, Ordering::Relaxed);
            return FilterDecision::Coplanar;
        }

        // Stage 3: orbit-path filter.
        if !orbit_path_filter(a, b, padded) {
            self.stats.excluded_path.fetch_add(1, Ordering::Relaxed);
            return FilterDecision::ExcludedPath;
        }

        // Stage 4: time filter. Use the *padded* threshold so the windows
        // are conservative Brent brackets.
        match time_filter(a, b, padded, span) {
            Some(windows) if windows.is_empty() => {
                self.stats.excluded_time.fetch_add(1, Ordering::Relaxed);
                FilterDecision::ExcludedTime
            }
            Some(windows) => {
                self.stats.kept.fetch_add(1, Ordering::Relaxed);
                FilterDecision::Windows(windows)
            }
            // Borderline coplanarity slipped past the tolerance check.
            None => {
                self.stats.coplanar.fetch_add(1, Ordering::Relaxed);
                FilterDecision::Coplanar
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn el(a: f64, e: f64, i: f64, raan: f64, argp: f64, m0: f64) -> KeplerElements {
        KeplerElements::new(a, e, i, raan, argp, m0).unwrap()
    }

    fn chain() -> FilterChain {
        FilterChain::new(FilterConfig::new(2.0))
    }

    #[test]
    fn leo_vs_geo_is_excluded_by_apsis() {
        let c = chain();
        let span = Interval::new(0.0, 6_000.0);
        let d = c.evaluate(
            &el(7_000.0, 0.001, 0.9, 0.0, 0.0, 0.0),
            &el(42_164.0, 0.0, 0.1, 0.0, 0.0, 0.0),
            span,
        );
        assert_eq!(d, FilterDecision::ExcludedApsis);
        let s = c.stats.snapshot();
        assert_eq!(s.tested, 1);
        assert_eq!(s.excluded_apsis, 1);
    }

    #[test]
    fn radially_separated_crossing_orbits_are_excluded_by_path() {
        let c = chain();
        let span = Interval::new(0.0, 6_000.0);
        // Shells overlap via padding? No: 7000 vs 7050 circular → gap 50 km
        // > padded threshold 17 km → apsis already excludes. Use 7000 vs
        // 7010: gap 10 km < 17 km padded, passes apsis; path filter sees
        // the true 10 km node distance > … no, 10 < 17 keeps it.
        // To hit the path stage: eccentric orbit whose shell overlaps but
        // whose curves stay far apart near the nodes.
        let a = el(7_000.0, 0.0, 0.2, 0.0, 0.0, 0.0);
        // Orbit with perigee 6970, apogee 7630 (shells overlap), but node
        // geometry placing the crossing radius away from 7000:
        // argp chosen so the node radius is near apogee.
        let b = el(7_300.0, 0.045, 1.2, 0.0, PI / 2.0, 0.0);
        let d = c.evaluate(&a, &b, span);
        // Node line for raan1=raan2=0 planes is the X axis; orbit b crosses
        // it at f = ±π/2 from perigee → r = p ≈ 7285 km, ~285 km from orbit
        // a's 7000 km ring. The path filter must exclude.
        assert_eq!(d, FilterDecision::ExcludedPath);
    }

    #[test]
    fn coplanar_pairs_are_classified_coplanar() {
        let c = chain();
        let span = Interval::new(0.0, 6_000.0);
        let d = c.evaluate(
            &el(7_000.0, 0.001, 0.9, 1.0, 0.0, 0.0),
            &el(7_005.0, 0.002, 0.9, 1.0, 2.0, 1.0),
            span,
        );
        assert_eq!(d, FilterDecision::Coplanar);
    }

    #[test]
    fn anti_phased_pair_is_excluded_by_time_filter() {
        let c = chain();
        let a = el(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0);
        let b = el(7_000.0, 0.0, 1.2, 1.0, 0.0, PI);
        let span = Interval::new(0.0, 2.0 * a.period());
        let d = c.evaluate(&a, &b, span);
        assert_eq!(d, FilterDecision::ExcludedTime);
    }

    #[test]
    fn co_phased_crossing_pair_yields_windows() {
        let c = chain();
        let a = el(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0);
        let b = el(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0);
        let span = Interval::new(0.0, 2.0 * a.period());
        match c.evaluate(&a, &b, span) {
            FilterDecision::Windows(w) => {
                assert!(!w.is_empty());
                for iv in &w {
                    assert!(iv.start >= span.start - 1e-9 && iv.end <= span.end + 1e-9);
                }
            }
            other => panic!("expected windows, got {other:?}"),
        }
        let s = c.stats.snapshot();
        assert_eq!(s.kept, 1);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let c = chain();
        let span = Interval::new(0.0, 6_000.0);
        let leo = el(7_000.0, 0.001, 0.9, 0.0, 0.0, 0.0);
        let geo = el(42_164.0, 0.0, 0.1, 0.0, 0.0, 0.0);
        for _ in 0..5 {
            c.evaluate(&leo, &geo, span);
        }
        assert_eq!(c.stats.snapshot().tested, 5);
        c.stats.reset();
        assert_eq!(c.stats.snapshot().tested, 0);
    }

    #[test]
    fn chain_is_thread_safe() {
        let c = chain();
        let span = Interval::new(0.0, 6_000.0);
        let leo = el(7_000.0, 0.001, 0.9, 0.0, 0.0, 0.0);
        let geo = el(42_164.0, 0.0, 0.1, 0.0, 0.0, 0.0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = &c;
                let leo = &leo;
                let geo = &geo;
                scope.spawn(move || {
                    for _ in 0..100 {
                        c.evaluate(leo, geo, span);
                    }
                });
            }
        });
        assert_eq!(c.stats.snapshot().tested, 400);
        assert_eq!(c.stats.snapshot().excluded_apsis, 400);
    }
}
