//! Time filter (Hoots, Crawford & Roehrich 1984, filter 3; §II).
//!
//! "By calculating the true anomaly window around the intersection line of
//! the two orbits, it is possible to apply a time filter that takes the
//! actual position of the two objects into account. It excludes all object
//! pairs that are not in these windows simultaneously."
//!
//! Geometry: satellite 1's distance from satellite 2's orbital *plane* is
//! `|r₁·sin(i_R)·sin(u₁)|`, where `i_R` is the relative inclination and
//! `u₁` the in-plane angle measured from the mutual node. The satellite can
//! only be within `d` of anything in plane 2 while
//! `|sin(u₁)| ≤ d / (r₁·sin i_R)`. That bounds a true-anomaly window around
//! each node crossing, which maps monotonically to a *time* window modulo
//! the orbital period. A conjunction requires both satellites inside their
//! windows **at the same node simultaneously**; the intersections of the
//! unrolled window sets are the Brent search intervals of the hybrid
//! variant.

use kessler_math::interval::{intersect_sets, merge_intervals, Interval};
use kessler_orbits::anomaly::true_to_mean;
use kessler_orbits::geometry::{mutual_node, true_anomaly_of_direction};
use kessler_orbits::KeplerElements;

/// A pair of per-node time-window sets for one satellite.
#[derive(Debug, Clone)]
pub struct NodeWindows {
    /// Windows (seconds past epoch) around the +node crossing.
    pub plus: Vec<Interval>,
    /// Windows around the −node crossing.
    pub minus: Vec<Interval>,
}

/// Compute the true-anomaly half-width of the node window.
///
/// Conservative choices: the radius is evaluated at *perigee* (the smallest
/// radius maximises the admissible angle… no — the smallest radius gives
/// the **largest** `d/(r·sin i_R)` bound, hence the widest window), so the
/// window can only be wider than necessary, never narrower. Returns `None`
/// when the bound exceeds 1, meaning the whole orbit stays within `d` of
/// the plane and no exclusion is possible.
pub fn anomaly_half_width(
    el: &KeplerElements,
    rel_inclination: f64,
    threshold: f64,
) -> Option<f64> {
    let sin_ir = rel_inclination.sin();
    if sin_ir <= 0.0 {
        return None;
    }
    let ratio = threshold / (el.perigee_radius() * sin_ir);
    if ratio >= 1.0 {
        return None;
    }
    Some(ratio.asin())
}

/// Time (seconds past epoch, in `[0, T)`) at which the satellite passes
/// true anomaly `f`.
pub fn time_of_true_anomaly(el: &KeplerElements, f: f64) -> f64 {
    let m = true_to_mean(f, el.eccentricity);
    let dm = kessler_math::angles::wrap_tau(m - el.mean_anomaly);
    dm / el.mean_motion()
}

/// Node-crossing time windows for one satellite relative to the mutual
/// node `node_dir`, unrolled over `span` (seconds past epoch).
///
/// `half_width` is the true-anomaly half-width from [`anomaly_half_width`];
/// `None` (no exclusion possible) yields a single window covering the whole
/// span for both nodes.
pub fn node_windows(
    el: &KeplerElements,
    node_dir: kessler_math::Vec3,
    half_width: Option<f64>,
    span: Interval,
) -> NodeWindows {
    let Some(hw) = half_width else {
        return NodeWindows {
            plus: vec![span],
            minus: vec![span],
        };
    };
    let period = el.period();
    let window_for = |f_node: f64| -> Vec<Interval> {
        // Map the anomaly window edges to times. t(f) is monotone in f, so
        // the window [f−hw, f+hw] maps to [t(f−hw), t(f+hw)] modulo T.
        let t_lo = time_of_true_anomaly(el, f_node - hw);
        let t_hi = time_of_true_anomaly(el, f_node + hw);
        // The window may straddle the period boundary (t_hi < t_lo after
        // wrapping); represent it as [t_lo, t_hi + T] in that case.
        let base = if t_hi >= t_lo {
            Interval::new(t_lo, t_hi)
        } else {
            Interval::new(t_lo, t_hi + period)
        };
        merge_intervals(base.unroll_periodic(period, &span), 1e-9)
    };
    let f_plus = true_anomaly_of_direction(el, node_dir);
    let f_minus = f_plus + std::f64::consts::PI;
    NodeWindows {
        plus: window_for(f_plus),
        minus: window_for(f_minus),
    }
}

/// Full time filter for a non-coplanar pair.
///
/// Returns the time intervals (within `span`, seconds past the common
/// epoch) during which both satellites are simultaneously inside their
/// windows at the same node — the candidate close-approach intervals.
/// An empty result means the pair is excluded.
///
/// Returns `None` if the pair is coplanar (no mutual node); the caller
/// must use the sampled search instead.
pub fn time_filter(
    a: &KeplerElements,
    b: &KeplerElements,
    threshold: f64,
    span: Interval,
) -> Option<Vec<Interval>> {
    let node = mutual_node(a, b)?;
    let rel_inc = kessler_orbits::geometry::relative_inclination(a, b);
    let hw_a = anomaly_half_width(a, rel_inc, threshold);
    let hw_b = anomaly_half_width(b, rel_inc, threshold);
    let wa = node_windows(a, node, hw_a, span);
    let wb = node_windows(b, node, hw_b, span);

    // Same-node coincidences only: (+,+) and (−,−). A satellite at the
    // +node and the other at the −node are on opposite sides of Earth.
    let mut out = intersect_sets(&wa.plus, &wb.plus);
    out.extend(intersect_sets(&wa.minus, &wb.minus));
    Some(merge_intervals(out, 1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kessler_orbits::propagator::PropagationConstants;
    use kessler_orbits::{ContourSolver, KeplerSolver};
    use proptest::prelude::*;
    use std::f64::consts::TAU;

    fn el(a: f64, e: f64, i: f64, raan: f64, argp: f64, m0: f64) -> KeplerElements {
        KeplerElements::new(a, e, i, raan, argp, m0).unwrap()
    }

    #[test]
    fn half_width_shrinks_with_larger_radius_and_angle() {
        let leo = el(7_000.0, 0.0, 0.9, 0.0, 0.0, 0.0);
        let hw_small = anomaly_half_width(&leo, 0.5, 2.0).unwrap();
        let hw_large_threshold = anomaly_half_width(&leo, 0.5, 50.0).unwrap();
        let hw_large_angle = anomaly_half_width(&leo, 1.5, 2.0).unwrap();
        assert!(hw_large_threshold > hw_small);
        assert!(hw_large_angle < hw_small);
    }

    #[test]
    fn half_width_is_none_for_tiny_relative_inclination() {
        let leo = el(7_000.0, 0.0, 0.9, 0.0, 0.0, 0.0);
        // sin(i_R)·r < d → whole orbit within threshold of the plane.
        assert!(anomaly_half_width(&leo, 1e-7, 2.0).is_none());
        assert!(anomaly_half_width(&leo, 0.0, 2.0).is_none());
    }

    #[test]
    fn time_of_true_anomaly_is_consistent_with_propagation() {
        let o = el(7_200.0, 0.1, 1.1, 0.4, 2.2, 1.0);
        let pc = PropagationConstants::from_elements(&o);
        let solver = ContourSolver::default();
        for f in [0.0, 1.0, 2.5, 4.0, 6.0] {
            let t = time_of_true_anomaly(&o, f);
            // Propagate to t and recover the true anomaly.
            let m = o.mean_anomaly_at(t);
            let ecc = solver.ecc_anomaly(m, o.eccentricity);
            let f_back = kessler_orbits::anomaly::ecc_to_true(ecc, o.eccentricity);
            assert!(
                kessler_math::angles::separation(f_back, f) < 1e-6,
                "f = {f}, f_back = {f_back}"
            );
            let _ = pc;
        }
    }

    #[test]
    fn windows_cover_actual_node_crossings() {
        // Two crossing circular orbits; propagate satellite 1 and verify
        // that whenever it is near the node line, the time lies inside a
        // +node or −node window.
        let a = el(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0);
        let b = el(7_000.0, 0.0, 1.2, 1.0, 0.0, 2.0);
        let node = mutual_node(&a, &b).unwrap();
        let rel = kessler_orbits::geometry::relative_inclination(&a, &b);
        let span = Interval::new(0.0, 3.0 * a.period());
        let hw = anomaly_half_width(&a, rel, 50.0);
        let w = node_windows(&a, node, hw, span);

        let pc = PropagationConstants::from_elements(&a);
        let solver = ContourSolver::default();
        let mut checked = 0;
        for k in 0..3000 {
            let t = span.end * k as f64 / 3000.0;
            let p = pc.position(t, &solver);
            // Out-of-plane distance from plane b.
            let oop = p.dot(kessler_orbits::geometry::orbit_normal(&b)).abs();
            if oop < 45.0 {
                // Near plane b → must be inside one of the windows.
                let inside = w.plus.iter().chain(&w.minus).any(|iv| iv.contains(t));
                assert!(inside, "t = {t}, oop = {oop} not inside any window");
                checked += 1;
            }
        }
        assert!(checked > 10, "test never exercised the windows");
    }

    #[test]
    fn phased_satellites_on_crossing_orbits_are_excluded() {
        // Same crossing geometry, but satellite phases arranged so they
        // never reach the node at the same time: windows must not overlap
        // (with a small threshold and short span).
        let a = el(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0);
        // Same period; phase offset of half a period.
        let b = el(7_000.0, 0.0, 1.2, 1.0, 0.0, std::f64::consts::PI);
        let span = Interval::new(0.0, 2.0 * a.period());
        let windows = time_filter(&a, &b, 2.0, span).unwrap();
        // At the node, one satellite arrives half a period after the
        // other; with a 2 km threshold the windows are seconds wide.
        assert!(
            windows.is_empty(),
            "expected exclusion, got windows {windows:?}"
        );
    }

    #[test]
    fn cosynchronised_satellites_are_kept() {
        // Both satellites reach the +node at t ≈ 0 (M₀ chosen so the node
        // anomaly is hit at epoch).
        let a = el(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0);
        let b = el(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0);
        // Both have their ascending node at RAAN 0 → mutual node along X,
        // and both start at perigee = node for argp = 0, M₀ = 0.
        let span = Interval::new(0.0, 2.0 * a.period());
        let windows = time_filter(&a, &b, 2.0, span).unwrap();
        assert!(!windows.is_empty(), "co-phased pair must survive");
        // The earliest window must include t = 0 (both at the node).
        assert!(windows[0].start < 5.0, "first window {:?}", windows[0]);
    }

    #[test]
    fn coplanar_pair_returns_none() {
        let a = el(7_000.0, 0.01, 0.5, 1.0, 0.0, 0.0);
        let b = el(7_400.0, 0.02, 0.5, 1.0, 2.0, 1.0);
        assert!(time_filter(&a, &b, 2.0, Interval::new(0.0, 6_000.0)).is_none());
    }

    proptest! {
        /// Safety property: whenever the *propagated* satellites actually
        /// come within the threshold, the time filter's windows must
        /// contain that instant. (No false exclusions — the property that
        /// makes the hybrid variant's accuracy match the paper's.)
        #[test]
        fn windows_never_exclude_a_real_conjunction(
            raan2 in 0.0..TAU, m2 in 0.0..TAU, i2 in 0.3..2.8f64,
        ) {
            let a = el(7_000.0, 0.0, 0.9, 0.0, 0.0, 0.0);
            let b = el(7_003.0, 0.0, i2, raan2, 0.0, m2);
            prop_assume!(kessler_orbits::geometry::relative_inclination(&a, &b) > 0.05);
            let threshold = 20.0;
            let span = Interval::new(0.0, 2.0 * a.period());
            let windows = time_filter(&a, &b, threshold, span).unwrap();

            let pa = PropagationConstants::from_elements(&a);
            let pb = PropagationConstants::from_elements(&b);
            let solver = ContourSolver::default();
            for k in 0..2000 {
                let t = span.end * k as f64 / 2000.0;
                let d = pa.position(t, &solver).dist(pb.position(t, &solver));
                if d < threshold * 0.95 {
                    prop_assert!(
                        windows.iter().any(|iv| iv.padded(1.0).contains(t)),
                        "distance {} at t = {} outside all windows", d, t
                    );
                }
            }
        }
    }
}
