//! Classical orbital filter chain (the "topological methods" of §II).
//!
//! Deterministic conjunction screening traditionally pushes every candidate
//! pair through a sequence of cheap geometric exclusion tests before paying
//! for a numerical close-approach search. This crate implements the chain
//! the paper builds its *legacy* baseline from and reuses inside the
//! *hybrid* variant:
//!
//! 1. [`apsis`] — the apogee/perigee filter (Hoots filter 1): orbits whose
//!    radial shells don't overlap (within the screening threshold) can
//!    never meet.
//! 2. [`coplanar`] — the coplanarity check the hybrid variant times
//!    separately in §V-C.1; coplanar pairs bypass the node-based filters.
//! 3. [`path`] — the orbit-path filter (Hoots filter 2): the minimum
//!    distance between the two *orbits* near their mutual node line.
//! 4. [`timefilter`] — the time filter (Hoots filter 3): true-anomaly
//!    windows around the node crossings converted into time windows; a
//!    pair survives only while both satellites are inside windows at the
//!    same node simultaneously. The surviving windows are exactly the
//!    Brent search intervals the hybrid variant uses ("the orbital filters
//!    determine the interval to search in for non-coplanar pairs", §IV-C).
//! 5. [`sieve`] — the (smart) sieve's Cartesian rejection cascade
//!    (Healy 1995; Rodríguez et al. 2002), the other parallel-screening
//!    family §II surveys; `kessler-core` builds a comparison screener on
//!    top of it.
//! 6. [`chain`] — the composed [`chain::FilterChain`] with per-stage
//!    exclusion statistics.

pub mod apsis;
pub mod chain;
pub mod coplanar;
pub mod path;
pub mod sieve;
pub mod timefilter;

pub use chain::{FilterChain, FilterConfig, FilterDecision, FilterStats};
