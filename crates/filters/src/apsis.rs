//! Apogee/perigee filter (Hoots, Crawford & Roehrich 1984, filter 1).
//!
//! "The apogee/perigee filter takes the farthest (apogee) and nearest point
//! (perigee) of an orbit and compares the range between with the respective
//! range of all other objects, excluding those as potential collision pairs
//! that do not overlap" (§II). Two satellites can only come within `d` of
//! each other if their radial shells `[perigee, apogee]`, padded by `d`,
//! intersect.

use kessler_orbits::KeplerElements;

/// Returns `true` if the pair **can** produce a conjunction within
/// `threshold` km (i.e. the filter keeps the pair), `false` if it is
/// excluded.
#[inline]
pub fn apsis_filter(a: &KeplerElements, b: &KeplerElements, threshold: f64) -> bool {
    let gap = shell_gap(a, b);
    gap <= threshold
}

/// Radial gap between the two orbits' shells in km (0 if they overlap).
///
/// The gap is a *lower bound* on the distance between any two points of
/// the orbits, which is what makes the exclusion sound.
#[inline]
pub fn shell_gap(a: &KeplerElements, b: &KeplerElements) -> f64 {
    let lo = a.perigee_radius().max(b.perigee_radius());
    let hi = a.apogee_radius().min(b.apogee_radius());
    (lo - hi).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kessler_math::Vec3;
    use kessler_orbits::geometry::position_at_true_anomaly;
    use proptest::prelude::*;
    use std::f64::consts::TAU;

    fn el(a: f64, e: f64) -> KeplerElements {
        KeplerElements::new(a, e, 0.5, 1.0, 2.0, 0.0).unwrap()
    }

    #[test]
    fn disjoint_shells_are_excluded() {
        // LEO at ~7000 km vs GEO at ~42164 km: shells are tens of
        // thousands of km apart.
        let leo = el(7_000.0, 0.001);
        let geo = el(42_164.0, 0.0);
        assert!(!apsis_filter(&leo, &geo, 2.0));
        assert!(shell_gap(&leo, &geo) > 30_000.0);
    }

    #[test]
    fn overlapping_shells_are_kept() {
        let a = el(7_000.0, 0.01);
        let b = el(7_050.0, 0.01); // shells overlap through eccentricity
        assert!(shell_gap(&a, &b) < 2.0 || apsis_filter(&a, &b, 100.0));
        // Identical orbits always overlap.
        assert!(apsis_filter(&a, &a, 0.0));
    }

    #[test]
    fn threshold_padding_is_respected() {
        // Circular orbits 10 km apart radially: excluded at d = 2 km,
        // kept at d = 20 km.
        let a = el(7_000.0, 0.0);
        let b = el(7_010.0, 0.0);
        assert!(!apsis_filter(&a, &b, 2.0));
        assert!(apsis_filter(&a, &b, 20.0));
        assert!((shell_gap(&a, &b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn eccentric_orbit_can_bridge_shells() {
        // A Molniya-like orbit spans LEO to beyond GEO and overlaps both.
        let molniya = el(26_600.0, 0.74);
        let leo = el(7_000.0, 0.0);
        let geo = el(42_164.0, 0.0);
        assert!(apsis_filter(&molniya, &leo, 2.0));
        assert!(apsis_filter(&molniya, &geo, 2.0));
    }

    proptest! {
        /// Soundness: if the filter excludes a pair at threshold d, then no
        /// two points on the two orbits are within d of each other. We test
        /// the contrapositive by sampling points on both orbits.
        #[test]
        fn excluded_pairs_really_cannot_meet(
            a1 in 6_700.0..40_000.0f64, e1 in 0.0..0.5f64,
            a2 in 6_700.0..40_000.0f64, e2 in 0.0..0.5f64,
            i1 in 0.0..3.0f64, i2 in 0.0..3.0f64,
            d in 0.1..100.0f64,
        ) {
            let o1 = KeplerElements::new(a1, e1, i1, 0.3, 1.0, 0.0).unwrap();
            let o2 = KeplerElements::new(a2, e2, i2, 2.0, 0.5, 0.0).unwrap();
            if !apsis_filter(&o1, &o2, d) {
                let mut min_dist = f64::INFINITY;
                for k in 0..24 {
                    let f1 = k as f64 * TAU / 24.0;
                    let p1: Vec3 = position_at_true_anomaly(&o1, f1);
                    for l in 0..24 {
                        let f2 = l as f64 * TAU / 24.0;
                        let p2 = position_at_true_anomaly(&o2, f2);
                        min_dist = min_dist.min(p1.dist(p2));
                    }
                }
                prop_assert!(min_dist > d, "excluded pair has points {} km apart", min_dist);
            }
        }

        #[test]
        fn shell_gap_is_symmetric(
            a1 in 6_700.0..40_000.0f64, e1 in 0.0..0.9f64,
            a2 in 6_700.0..40_000.0f64, e2 in 0.0..0.9f64,
        ) {
            let o1 = el(a1, e1);
            let o2 = el(a2, e2);
            prop_assert_eq!(shell_gap(&o1, &o2), shell_gap(&o2, &o1));
        }
    }
}
