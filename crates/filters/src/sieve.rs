//! The (smart) sieve: cheap Cartesian rejection tests on sampled positions
//! (Healy 1995 \[16\]; Rodríguez, Fadrique & Klinkrad 2002 \[17\] — the
//! paper's §II related work).
//!
//! Where the grid bins positions spatially, the sieve compares each pair's
//! propagated coordinates directly through a cascade of ever-tighter, ever-
//! costlier tests. The first tests are single subtractions, so the cascade
//! is very cheap per pair — but it is applied to *every* pair at *every*
//! step, which is exactly the O(n²) behaviour the paper's grid removes.
//! We implement it both as a filter building block and as the
//! `SieveScreener` comparison variant in `kessler-core`.

use kessler_math::Vec3;

/// Outcome of the sieve cascade for one pair at one sampling step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SieveOutcome {
    /// Rejected by a per-axis test (cheapest exit).
    RejectedAxis,
    /// Rejected by the squared-range test.
    RejectedRange,
    /// Rejected by the fine minimum-distance test (linear-motion bound).
    RejectedFine,
    /// The pair may undercut the threshold near this step — refine it.
    Candidate,
}

/// The critical distance of the sieve: the screening threshold inflated by
/// the largest possible approach during one step,
/// `D_crit = d + v_rel_max · Δt` (smart-sieve "accelerated threshold").
#[inline]
pub fn critical_distance(threshold_km: f64, max_rel_speed_km_s: f64, step_s: f64) -> f64 {
    threshold_km + max_rel_speed_km_s * step_s
}

/// Run the sieve cascade on one pair at one step.
///
/// * `dr` — relative position at the sample (km);
/// * `dv` — relative velocity at the sample (km/s);
/// * `d_crit` — from [`critical_distance`];
/// * `threshold_km` — the actual screening threshold, used by the fine test.
#[inline]
pub fn sieve_pair(dr: Vec3, dv: Vec3, d_crit: f64, threshold_km: f64, step_s: f64) -> SieveOutcome {
    // 1) Per-axis rejects: |Δx| > D_crit ⇒ |Δr| > D_crit.
    if dr.x.abs() > d_crit || dr.y.abs() > d_crit || dr.z.abs() > d_crit {
        return SieveOutcome::RejectedAxis;
    }
    // 2) Squared-range test.
    let r2 = dr.norm_sq();
    if r2 > d_crit * d_crit {
        return SieveOutcome::RejectedRange;
    }
    // 3) Fine test: minimum distance of the linearised relative motion
    //    within ±Δt of the sample. The unconstrained linear minimum is
    //    d² = |Δr|² − (Δr·Δv)²/|Δv|², reached at τ* = −Δr·Δv/|Δv|².
    let v2 = dv.norm_sq();
    if v2 > 0.0 {
        let tau = -dr.dot(dv) / v2;
        let tau_clamped = tau.clamp(-step_s, step_s);
        let closest = dr + dv * tau_clamped;
        // Padding: linearisation error over one step is bounded by the
        // centripetal sagitta ~ |a|·Δt²/8 with |a| ≲ 9e-3 km/s² in LEO.
        let sagitta = 1.2e-3 * step_s * step_s;
        if closest.norm() > threshold_km + sagitta {
            return SieveOutcome::RejectedFine;
        }
    } else if r2.sqrt() > threshold_km {
        return SieveOutcome::RejectedFine;
    }
    SieveOutcome::Candidate
}

/// Per-stage counters for sieve diagnostics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SieveStats {
    pub tested: u64,
    pub rejected_axis: u64,
    pub rejected_range: u64,
    pub rejected_fine: u64,
    pub candidates: u64,
}

impl SieveStats {
    pub fn record(&mut self, outcome: SieveOutcome) {
        self.tested += 1;
        match outcome {
            SieveOutcome::RejectedAxis => self.rejected_axis += 1,
            SieveOutcome::RejectedRange => self.rejected_range += 1,
            SieveOutcome::RejectedFine => self.rejected_fine += 1,
            SieveOutcome::Candidate => self.candidates += 1,
        }
    }

    pub fn merge(&mut self, other: &SieveStats) {
        self.tested += other.tested;
        self.rejected_axis += other.rejected_axis;
        self.rejected_range += other.rejected_range;
        self.rejected_fine += other.rejected_fine;
        self.candidates += other.candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: f64 = 2.0; // km
    const STEP: f64 = 8.0; // s
    const VMAX: f64 = 15.6; // km/s head-on LEO

    fn d_crit() -> f64 {
        critical_distance(D, VMAX, STEP)
    }

    #[test]
    fn critical_distance_grows_with_step() {
        assert_eq!(critical_distance(2.0, 15.6, 0.0), 2.0);
        assert!(critical_distance(2.0, 15.6, 8.0) > critical_distance(2.0, 15.6, 1.0));
    }

    #[test]
    fn distant_pair_exits_at_the_axis_test() {
        let dr = Vec3::new(500.0, 0.1, 0.1);
        let dv = Vec3::new(0.0, 0.1, 0.0);
        assert_eq!(
            sieve_pair(dr, dv, d_crit(), D, STEP),
            SieveOutcome::RejectedAxis
        );
    }

    #[test]
    fn diagonal_pair_exits_at_the_range_test() {
        // Each axis below D_crit (≈ 126.8) but the norm above it.
        let c = d_crit() * 0.9;
        let dr = Vec3::new(c, c, c);
        assert_eq!(
            sieve_pair(dr, Vec3::ZERO, d_crit(), D, STEP),
            SieveOutcome::RejectedRange
        );
    }

    #[test]
    fn receding_pair_exits_at_the_fine_test() {
        // Inside D_crit and slowly receding: the linear minimum lies before
        // the window (τ* = −16.7 s < −Δt), and at the window edge the
        // separation is still 26 km — far above the threshold.
        let dr = Vec3::new(50.0, 0.0, 0.0);
        let dv = Vec3::new(3.0, 0.0, 0.0); // receding
        assert_eq!(
            sieve_pair(dr, dv, d_crit(), D, STEP),
            SieveOutcome::RejectedFine
        );
        // A fast-receding pair whose closest approach τ* = −7.1 s falls
        // *inside* the ±8 s window is, correctly, still a candidate: the
        // encounter happened just before this sample.
        assert_eq!(
            sieve_pair(dr, Vec3::new(7.0, 0.0, 0.0), d_crit(), D, STEP),
            SieveOutcome::Candidate
        );
    }

    #[test]
    fn head_on_approach_is_a_candidate() {
        // 50 km apart, closing at 14 km/s → closest approach ~0 within 8 s.
        let dr = Vec3::new(50.0, 0.0, 0.0);
        let dv = Vec3::new(-14.0, 0.0, 0.0);
        assert_eq!(
            sieve_pair(dr, dv, d_crit(), D, STEP),
            SieveOutcome::Candidate
        );
    }

    #[test]
    fn near_miss_beyond_threshold_is_rejected_by_fine_test() {
        // Passing 20 km abeam: linear minimum 20 km > 2 km threshold.
        let dr = Vec3::new(50.0, 20.0, 0.0);
        let dv = Vec3::new(-14.0, 0.0, 0.0);
        assert_eq!(
            sieve_pair(dr, dv, d_crit(), D, STEP),
            SieveOutcome::RejectedFine
        );
    }

    #[test]
    fn already_close_pair_is_a_candidate() {
        let dr = Vec3::new(0.5, 0.5, 0.0);
        assert_eq!(
            sieve_pair(dr, Vec3::ZERO, d_crit(), D, STEP),
            SieveOutcome::Candidate
        );
    }

    #[test]
    fn minimum_outside_the_step_window_uses_clamped_time() {
        // Closing slowly from 100 km at 1 km/s: linear minimum (t = 100 s)
        // is outside ±8 s; at the window edge the distance is still 92 km.
        let dr = Vec3::new(100.0, 0.0, 0.0);
        let dv = Vec3::new(-1.0, 0.0, 0.0);
        assert_eq!(
            sieve_pair(dr, dv, d_crit(), D, STEP),
            SieveOutcome::RejectedFine
        );
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = SieveStats::default();
        a.record(SieveOutcome::RejectedAxis);
        a.record(SieveOutcome::Candidate);
        let mut b = SieveStats::default();
        b.record(SieveOutcome::RejectedRange);
        b.record(SieveOutcome::RejectedFine);
        a.merge(&b);
        assert_eq!(a.tested, 4);
        assert_eq!(a.rejected_axis, 1);
        assert_eq!(a.rejected_range, 1);
        assert_eq!(a.rejected_fine, 1);
        assert_eq!(a.candidates, 1);
    }

    /// Soundness: any pair whose true linear-motion minimum within the step
    /// window is below the threshold must survive the cascade.
    #[test]
    fn no_false_rejection_for_true_threats() {
        for k in 0..200 {
            let f = k as f64;
            // Build a closing geometry that bottoms out below the threshold
            // inside the window.
            let dv = Vec3::new(-10.0 - (f % 5.0), 0.3 * (f % 3.0), 0.0);
            let tau_min = (f % 7.0) - 3.0; // in [-3, 3] ⊂ [-8, 8]
            let offset = Vec3::new(0.0, 0.4, 0.9) * ((f % 4.0) * 0.4); // ≤ ~1.8 km abeam
            let dr = offset - dv * tau_min;
            let min_dist = offset.norm();
            if min_dist <= D {
                let outcome = sieve_pair(dr, dv, d_crit(), D, STEP);
                assert_eq!(
                    outcome,
                    SieveOutcome::Candidate,
                    "threat at {min_dist} km rejected: {outcome:?} (dr = {dr:?})"
                );
            }
        }
    }
}
