//! Coplanarity check.
//!
//! The node-based filters (orbit path, time filter) need a well-defined
//! mutual node line, which degenerates as the two orbital planes align.
//! The hybrid variant therefore classifies each surviving pair as coplanar
//! or non-coplanar first — the paper times this step separately (9 % of
//! hybrid GPU runtime, §V-C.1) — and routes coplanar pairs to the
//! grid-style sampled search instead.

use kessler_orbits::{geometry, KeplerElements};

/// Default angular tolerance below which two planes are treated as
/// coplanar (radians). With relative inclination i_R, the out-of-plane
/// separation scales as `r·sin(i_R)`; below ~0.5° the node geometry is too
/// ill-conditioned for window construction at LEO radii.
pub const DEFAULT_COPLANAR_TOLERANCE: f64 = 0.01;

/// `true` if the two orbital planes are within `tolerance` radians of each
/// other (including the retrograde-aligned case).
#[inline]
pub fn are_coplanar(a: &KeplerElements, b: &KeplerElements, tolerance: f64) -> bool {
    geometry::relative_inclination(a, b) < tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    fn el(i: f64, raan: f64) -> KeplerElements {
        KeplerElements::new(7_000.0, 0.01, i, raan, 0.5, 0.0).unwrap()
    }

    #[test]
    fn same_plane_is_coplanar() {
        assert!(are_coplanar(
            &el(0.9, 1.0),
            &el(0.9, 1.0),
            DEFAULT_COPLANAR_TOLERANCE
        ));
    }

    #[test]
    fn slightly_tilted_planes_are_coplanar_within_tolerance() {
        assert!(are_coplanar(
            &el(0.900, 1.0),
            &el(0.905, 1.0),
            DEFAULT_COPLANAR_TOLERANCE
        ));
    }

    #[test]
    fn perpendicular_planes_are_not_coplanar() {
        assert!(!are_coplanar(
            &el(0.0, 0.0),
            &el(FRAC_PI_2, 0.0),
            DEFAULT_COPLANAR_TOLERANCE
        ));
    }

    #[test]
    fn retrograde_same_plane_is_coplanar() {
        // i = 0 and i = π describe the same plane with opposite traversal.
        assert!(are_coplanar(
            &el(0.0, 0.0),
            &el(PI, 0.0),
            DEFAULT_COPLANAR_TOLERANCE
        ));
    }

    #[test]
    fn equal_inclination_different_node_is_not_coplanar() {
        // Two 53°-inclined planes with nodes 90° apart (Starlink-style
        // shells) intersect at a large relative inclination.
        let a = el(0.925, 0.0);
        let b = el(0.925, FRAC_PI_2);
        assert!(!are_coplanar(&a, &b, DEFAULT_COPLANAR_TOLERANCE));
    }

    proptest! {
        #[test]
        fn coplanarity_is_symmetric(
            i1 in 0.0..PI, i2 in 0.0..PI,
            r1 in 0.0..TAU, r2 in 0.0..TAU,
            tol in 0.001..0.2f64,
        ) {
            let a = el(i1, r1);
            let b = el(i2, r2);
            prop_assert_eq!(are_coplanar(&a, &b, tol), are_coplanar(&b, &a, tol));
        }

        #[test]
        fn coplanar_pairs_have_no_mutual_node_or_tiny_angle(
            i in 0.0..PI, raan in 0.0..TAU,
        ) {
            let a = el(i, raan);
            // Perturb the plane by less than the tolerance.
            let b = el((i + 0.001).min(PI), raan);
            prop_assert!(are_coplanar(&a, &b, DEFAULT_COPLANAR_TOLERANCE));
        }
    }
}
