//! Orbit-path filter (Hoots, Crawford & Roehrich 1984, filter 2).
//!
//! "The orbit path filter further reduces the number of object pairs by
//! calculating the minimal distance between the two orbits" (§II). For
//! non-coplanar orbits the closest approach of the two *curves* happens in
//! the vicinity of their mutual node line, so the filter evaluates both
//! node crossings and locally refines the minimum with coordinate-descent
//! Brent minimisation over the two true anomalies.

use kessler_math::brent::brent_minimize;
use kessler_math::Vec3;
use kessler_orbits::geometry::{mutual_node, position_at_true_anomaly, true_anomaly_of_direction};
use kessler_orbits::KeplerElements;

/// Half-width (radians of true anomaly) of the refinement window around
/// each node crossing. Generous enough to absorb the offset between the
/// nodal crossing and the true curve-to-curve minimum on eccentric orbits.
const REFINE_HALF_WIDTH: f64 = 0.6;

/// Coordinate-descent sweeps. Distance-between-ellipses is benign near the
/// node; three alternations converge far below filter accuracy.
const REFINE_PASSES: u32 = 3;

/// Minimum distance between the two orbit curves near their mutual nodes,
/// in km. Returns `None` for (numerically) coplanar orbits, for which the
/// node construction is undefined — the caller must have routed those to
/// the coplanar path first.
pub fn orbit_path_distance(a: &KeplerElements, b: &KeplerElements) -> Option<f64> {
    let node = mutual_node(a, b)?;
    let mut best = f64::INFINITY;
    for dir in [node, -node] {
        let f_a = true_anomaly_of_direction(a, dir);
        let f_b = true_anomaly_of_direction(b, dir);
        best = best.min(refine_minimum(a, b, f_a, f_b));
    }
    Some(best)
}

/// Resolution of the coarse global (f₁, f₂) scan used as a fallback when
/// the node-local estimate would exclude a pair. 16×16 keeps the fallback
/// cheap; each coarse local minimum is then refined, and the ±0.6 rad
/// refinement window comfortably covers the τ/16 ≈ 0.39 rad grid spacing.
const GLOBAL_SCAN_SAMPLES: usize = 16;

/// `true` if the pair is kept (the orbits come within `threshold` km near
/// a node), `false` if excluded.
///
/// Exclusion is the dangerous direction (a falsely excluded pair is never
/// refined), so before excluding, a coarse global scan over both anomalies
/// double-checks geometries where the true curve-to-curve minimum sits far
/// from the mutual node line — nearly-coplanar retrograde pairs and
/// high-eccentricity orbits, where the node-local refinement window can
/// miss the real minimum.
pub fn orbit_path_filter(a: &KeplerElements, b: &KeplerElements, threshold: f64) -> bool {
    match orbit_path_distance(a, b) {
        Some(d) if d <= threshold => true,
        Some(_) => global_minimum_distance(a, b) <= threshold,
        // Coplanar: the node-based bound does not apply; keep the pair.
        None => true,
    }
}

/// Global curve-to-curve minimum: coarse scan of the (f₁, f₂) torus, then
/// coordinate-descent refinement of every coarse local minimum. Only used
/// on the exclusion path, where spending a few hundred evaluations beats
/// dropping a real conjunction.
fn global_minimum_distance(a: &KeplerElements, b: &KeplerElements) -> f64 {
    const N: usize = GLOBAL_SCAN_SAMPLES;
    let step = std::f64::consts::TAU / N as f64;
    let mut grid = [[0.0f64; N]; N];
    let positions_b: Vec<Vec3> = (0..N)
        .map(|l| position_at_true_anomaly(b, l as f64 * step))
        .collect();
    for (k, row) in grid.iter_mut().enumerate() {
        let pa = position_at_true_anomaly(a, k as f64 * step);
        for (l, cell) in row.iter_mut().enumerate() {
            *cell = pa.dist_sq(positions_b[l]);
        }
    }
    // Refine every 2-D local minimum (torus topology): the basin holding
    // the true global minimum contains one of them.
    let mut best = f64::INFINITY;
    for k in 0..N {
        for l in 0..N {
            let v = grid[k][l];
            let is_local_min = (-1i64..=1).all(|dk| {
                (-1i64..=1).all(|dl| {
                    let nk = (k as i64 + dk).rem_euclid(N as i64) as usize;
                    let nl = (l as i64 + dl).rem_euclid(N as i64) as usize;
                    grid[nk][nl] >= v
                })
            });
            if is_local_min {
                best = best.min(refine_minimum(a, b, k as f64 * step, l as f64 * step));
            }
        }
    }
    best
}

/// Local minimisation of `‖p_a(f₁) − p_b(f₂)‖` by alternating Brent passes
/// over each anomaly.
fn refine_minimum(a: &KeplerElements, b: &KeplerElements, f_a0: f64, f_b0: f64) -> f64 {
    let mut f_a = f_a0;
    let mut f_b = f_b0;
    let dist = |fa: f64, fb: f64| -> f64 {
        let pa: Vec3 = position_at_true_anomaly(a, fa);
        let pb: Vec3 = position_at_true_anomaly(b, fb);
        pa.dist_sq(pb)
    };
    let mut best = dist(f_a, f_b);
    for _ in 0..REFINE_PASSES {
        let ra = brent_minimize(
            |x| dist(x, f_b),
            f_a - REFINE_HALF_WIDTH,
            f_a + REFINE_HALF_WIDTH,
            1e-10,
            60,
        );
        f_a = ra.xmin;
        let rb = brent_minimize(
            |y| dist(f_a, y),
            f_b - REFINE_HALF_WIDTH,
            f_b + REFINE_HALF_WIDTH,
            1e-10,
            60,
        );
        f_b = rb.xmin;
        best = best.min(rb.fmin);
    }
    best.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, TAU};

    fn el(a: f64, e: f64, i: f64, raan: f64, argp: f64) -> KeplerElements {
        KeplerElements::new(a, e, i, raan, argp, 0.0).unwrap()
    }

    #[test]
    fn crossing_circular_orbits_have_zero_path_distance() {
        // Two circular orbits of identical radius in different planes
        // intersect exactly on the node line.
        let a = el(7_000.0, 0.0, 0.3, 0.0, 0.0);
        let b = el(7_000.0, 0.0, 1.2, 1.0, 0.0);
        let d = orbit_path_distance(&a, &b).unwrap();
        assert!(d < 1e-3, "d = {d}");
        assert!(orbit_path_filter(&a, &b, 2.0));
    }

    #[test]
    fn radially_separated_circular_orbits_keep_their_gap() {
        // Radii 7000 and 7100, any planes: curve distance is ≥ 100 km and
        // exactly 100 at the node for circular orbits.
        let a = el(7_000.0, 0.0, 0.3, 0.0, 0.0);
        let b = el(7_100.0, 0.0, 1.2, 1.0, 0.0);
        let d = orbit_path_distance(&a, &b).unwrap();
        assert!((d - 100.0).abs() < 0.1, "d = {d}");
        assert!(!orbit_path_filter(&a, &b, 2.0));
        assert!(orbit_path_filter(&a, &b, 150.0));
    }

    #[test]
    fn coplanar_orbits_are_kept_not_crashed() {
        let a = el(7_000.0, 0.01, 0.5, 1.0, 0.0);
        let b = el(7_500.0, 0.02, 0.5, 1.0, 2.0);
        assert!(orbit_path_distance(&a, &b).is_none());
        assert!(orbit_path_filter(&a, &b, 2.0));
    }

    #[test]
    fn eccentric_orbit_minimum_is_found_off_node_radius() {
        // An eccentric orbit crossing a circular shell: at the node the
        // radii may differ, but nearby anomalies bring the curves closer.
        // Construct a case where the eccentric orbit's radius *at the node*
        // is off but the curves still intersect: e = 0.1, a chosen so the
        // shell radius 7000 lies between perigee and apogee.
        let circ = el(7_000.0, 0.0, 0.2, 0.0, 0.0);
        let ecc = el(7_200.0, 0.1, 1.0, 0.5, 1.3);
        // The eccentric orbit's radius sweeps 6480–7920 km, so it crosses
        // the 7000 km shell; both crossings happen at *some* anomaly, and
        // the two curves must pass within a few hundred km near a node.
        let d = orbit_path_distance(&circ, &ecc).unwrap();
        // Distance at the nodes without refinement could be large; the
        // refinement must find the true near-crossing region.
        let d_keep = orbit_path_filter(&circ, &ecc, 500.0);
        assert!(d < 1_500.0, "refined distance = {d}");
        let _ = d_keep;
    }

    #[test]
    fn filter_distance_is_symmetric() {
        let a = el(7_000.0, 0.05, 0.7, 0.2, 1.0);
        let b = el(7_300.0, 0.08, 1.3, 2.0, 0.4);
        let dab = orbit_path_distance(&a, &b).unwrap();
        let dba = orbit_path_distance(&b, &a).unwrap();
        assert!((dab - dba).abs() < 1e-3, "dab = {dab}, dba = {dba}");
    }

    #[test]
    fn perpendicular_rings_distance_matches_geometry() {
        // Ring A: radius 7000 in the XY plane. Ring B: radius 8000 in the
        // XZ plane. Node line = X axis. Minimum distance = 1000 km at the
        // node.
        let a = el(7_000.0, 0.0, 0.0, 0.0, 0.0);
        let b = el(8_000.0, 0.0, FRAC_PI_2, 0.0, 0.0);
        let d = orbit_path_distance(&a, &b).unwrap();
        assert!((d - 1_000.0).abs() < 0.5, "d = {d}");
    }

    #[test]
    fn global_scan_matches_known_minima() {
        // Radially separated circular orbits: true global minimum is the
        // 100 km shell gap, attained on the node line.
        let a = el(7_000.0, 0.0, 0.3, 0.0, 0.0);
        let b = el(7_100.0, 0.0, 1.2, 1.0, 0.0);
        let g = global_minimum_distance(&a, &b);
        assert!((g - 100.0).abs() < 0.5, "g = {g}");
        // Perpendicular rings of radii 7000/8000: minimum 1000 km.
        let a = el(7_000.0, 0.0, 0.0, 0.0, 0.0);
        let b = el(8_000.0, 0.0, FRAC_PI_2, 0.0, 0.0);
        let g = global_minimum_distance(&a, &b);
        assert!((g - 1_000.0).abs() < 1.0, "g = {g}");
    }

    #[test]
    fn fallback_does_not_resurrect_truly_distant_pairs() {
        // 100 km apart everywhere: the exclusion at a 2 km threshold must
        // survive the global-scan double-check.
        let a = el(7_000.0, 0.0, 0.3, 0.0, 0.0);
        let b = el(7_100.0, 0.0, 1.2, 1.0, 0.0);
        assert!(!orbit_path_filter(&a, &b, 2.0));
    }

    #[test]
    fn regression_case_is_decided_consistently() {
        // The checked-in proptest regression (path.txt): a high-eccentricity
        // near-retrograde pair. Whatever the filter decides, the decision
        // must be consistent with the refined global minimum.
        let o1 = KeplerElements::new(18_288.843174009147, 0.0, 0.1, 4.639404799736325, 0.7, 0.0)
            .unwrap();
        let o2 = KeplerElements::new(
            18_898.632857579538,
            0.3923351625189953,
            2.9220304467817857,
            3.1320998609571724,
            2.1,
            0.0,
        )
        .unwrap();
        let threshold = 40.0;
        let global = global_minimum_distance(&o1, &o2);
        if global <= threshold {
            assert!(orbit_path_filter(&o1, &o2, threshold));
        }
    }

    proptest! {
        /// Soundness at the decision boundary — the property the filter is
        /// actually responsible for: if the two curves *do* come close
        /// (sampled minimum under the threshold), the node-refined estimate
        /// must not exclude the pair. Far above the threshold the node
        /// estimate may legitimately overestimate (the true minimum of two
        /// distant orbits need not be near a node), but there the decision
        /// is "exclude" either way.
        #[test]
        fn no_false_exclusion_near_the_threshold(
            a1 in 6_800.0..20_000.0f64, e1 in 0.0..0.4f64,
            a2 in 6_800.0..20_000.0f64, e2 in 0.0..0.4f64,
            i1 in 0.1..1.4f64, i2 in 1.6..3.0f64,
            raan1 in 0.0..TAU, raan2 in 0.0..TAU,
        ) {
            let o1 = el(a1, e1, i1, raan1, 0.7);
            let o2 = el(a2, e2, i2, raan2, 2.1);
            prop_assume!(
                kessler_orbits::geometry::relative_inclination(&o1, &o2) > 0.05
            );
            let threshold = 40.0;
            // Fine sampling near both node crossings plus a coarse global
            // sweep to find the true minimum.
            let mut sampled = f64::INFINITY;
            for k in 0..72 {
                let f1 = k as f64 * TAU / 72.0;
                let p1 = position_at_true_anomaly(&o1, f1);
                for l in 0..72 {
                    let f2 = l as f64 * TAU / 72.0;
                    sampled = sampled.min(p1.dist(position_at_true_anomaly(&o2, f2)));
                }
            }
            if sampled <= threshold {
                prop_assert!(
                    orbit_path_filter(&o1, &o2, threshold),
                    "pair with sampled min {} km was excluded at threshold {}",
                    sampled, threshold
                );
            }
        }
    }
}
