//! `kessler` — command-line conjunction screening.
//!
//! ```text
//! kessler generate --n 10000 --seed 7 --out population.json
//! kessler screen --pop population.json --variant hybrid --threshold 2 --span 3600 --csv conj.csv
//! kessler plan --n 1024000 --variant hybrid --memory-gib 24
//! kessler tle catalog.txt --stats
//! kessler compare --n 2000 --span 600 --threshold 10
//! kessler serve --addr 127.0.0.1:7878 --n 5000 --threshold 5 --span 600
//! kessler submit status --addr 127.0.0.1:7878
//! kessler info
//! ```

mod args;
mod commands;

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        commands::print_usage();
        std::process::exit(2);
    };
    let flags = args::Flags::new(argv.collect());
    let result = match cmd.as_str() {
        "generate" => commands::generate(&flags),
        "screen" => commands::screen(&flags),
        "plan" => commands::plan(&flags),
        "tle" => commands::tle(&flags),
        "compare" => commands::compare(&flags),
        "serve" => commands::serve(&flags),
        "submit" => commands::submit(&flags),
        "info" => commands::info(),
        "help" | "--help" | "-h" => {
            commands::print_usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try `kessler help`)")),
    };
    if let Err(message) = result {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
