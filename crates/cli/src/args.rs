//! Tiny dependency-free flag parser shared by the subcommands.

/// Parsed `--flag value` / `--switch` arguments after the subcommand.
pub struct Flags {
    raw: Vec<String>,
}

impl Flags {
    pub fn new(raw: Vec<String>) -> Flags {
        Flags { raw }
    }

    pub fn value_of(&self, flag: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    pub fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    pub fn usize_of(&self, flag: &str, default: usize) -> Result<usize, String> {
        match self.value_of(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {flag}: `{v}`")),
        }
    }

    pub fn f64_of(&self, flag: &str, default: f64) -> Result<f64, String> {
        match self.value_of(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {flag}: `{v}`")),
        }
    }

    pub fn u64_of(&self, flag: &str, default: u64) -> Result<u64, String> {
        match self.value_of(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {flag}: `{v}`")),
        }
    }

    /// All positional (non-flag) arguments, in order.
    pub fn positionals(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut skip_next = false;
        for a in &self.raw {
            if skip_next {
                skip_next = false;
                continue;
            }
            if let Some(stripped) = a.strip_prefix("--") {
                // Boolean switches take no value; everything else does.
                skip_next = !matches!(stripped, "csv" | "stats" | "parallel" | "all" | "smoke");
                continue;
            }
            out.push(a.as_str());
        }
        out
    }

    /// First positional (non-flag) argument.
    pub fn positional(&self) -> Option<&str> {
        self.positional_at(0)
    }

    /// The n-th positional argument (0-based), e.g. the FILE after an
    /// action word like `submit tle FILE`.
    pub fn positional_at(&self, n: usize) -> Option<&str> {
        self.positionals().get(n).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::new(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn parses_values_switches_and_positionals() {
        let f = flags(&["--n", "100", "--csv", "input.txt", "--span", "60"]);
        assert_eq!(f.usize_of("--n", 0).unwrap(), 100);
        assert!(f.has("--csv"));
        assert_eq!(f.positional(), Some("input.txt"));
        assert_eq!(f.f64_of("--span", 0.0).unwrap(), 60.0);
        assert_eq!(f.f64_of("--absent", 7.5).unwrap(), 7.5);
    }

    #[test]
    fn bad_values_are_reported() {
        let f = flags(&["--n", "abc"]);
        assert!(f.usize_of("--n", 0).is_err());
    }

    #[test]
    fn positional_skips_flag_values() {
        let f = flags(&["--seed", "42", "catalog.txt"]);
        assert_eq!(f.positional(), Some("catalog.txt"));
        assert!(flags(&["--seed", "42"]).positional().is_none());
    }

    #[test]
    fn positionals_keep_order_around_flags() {
        let f = flags(&["tle", "--addr", "127.0.0.1:7878", "catalog.txt", "--stats"]);
        assert_eq!(f.positionals(), vec!["tle", "catalog.txt"]);
        assert_eq!(f.positional_at(0), Some("tle"));
        assert_eq!(f.positional_at(1), Some("catalog.txt"));
        assert_eq!(f.positional_at(2), None);
    }

    #[test]
    fn subscribe_switches_take_no_value() {
        let f = flags(&["subscribe", "--all", "--smoke", "--addr", "127.0.0.1:7878"]);
        assert_eq!(f.positionals(), vec!["subscribe"]);
        assert!(f.has("--all"));
        assert!(f.has("--smoke"));
    }
}
