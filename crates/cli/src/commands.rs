//! Subcommand implementations.

use crate::args::Flags;
use kessler_core::{
    io, GpuGridScreener, GpuHybridScreener, GridScreener, HybridScreener, LegacyScreener,
    MemoryModel, Screener, ScreeningConfig, ScreeningReport, SieveScreener, Variant,
};
use kessler_orbits::KeplerElements;
use kessler_population::{tle as tle_mod, PopulationConfig, PopulationGenerator};

pub fn print_usage() {
    println!(
        "kessler — parallel satellite conjunction screening

USAGE
  kessler <subcommand> [flags]

SUBCOMMANDS
  generate   synthesise a population      --n N [--seed S] [--out FILE] [--csv]
  screen     run a screening variant      --variant V (--pop FILE | --n N)
             [--threshold KM] [--span S] [--sps S] [--threads T]
             [--json FILE] [--csv FILE]
  plan       memory/parallelism plan      --n N [--variant V] [--threshold KM]
             [--span S] [--sps S] [--memory-gib G]
  tle        parse a 2LE/3LE catalog      FILE [--stats]
  compare    accuracy across variants     --n N [--threshold KM] [--span S]
  serve      run the screening daemon     [--addr HOST:PORT] [--pop FILE | --n N]
             [--variant grid|hybrid (default grid)] screening pipeline
             [--threshold KM] [--span S] [--sps S] [--threads T]
             [--workers N (0 = auto)] screening worker pool size
             [--state-dir DIR] [--snapshot-every N] [--queue-depth N]
             [--shards BANDSxSHELLS | --shards default] partition the
             catalog by orbital regime (per-shard grids, incremental
             per-shard snapshots); [--shard-range RMIN:RMAX] radii, km
             [--read-timeout SECS (0 = none)]
             [--metrics-every SECS (0 = off)] log a metrics digest to stderr
             with --state-dir, mutations are WAL-logged and state is
             recovered on restart (preload is skipped if state recovers)
  submit     send one daemon command      ACTION [--addr HOST:PORT] [--id I]
             [--a KM --e E --incl R --raan R --argp R --m R] [--dt S]
             [--req-id ID] tag the request (the CANCEL handle)
             [--json REQUEST] [--timeout SECS (0 = none, default 10)]
             [--retries N] retry transient failures with jittered
             exponential backoff; mutations are retried only when the
             daemon confirms the request was not applied
             ACTION: add | update | remove | screen | delta | advance
                     | cancel ID | tle FILE | subscribe
                     | status | metrics | shutdown
             `cancel ID` aborts the queued/in-flight job tagged ID;
             `tle FILE` streams a 2LE/3LE catalog into the daemon
             `subscribe (--all | --ids A,B,C) [--count N (0 = forever)]
             [--smoke]` streams conjunction push events (new / updated /
             retired) as screens commit; --smoke only proves the
             SUBSCRIBE/UNSUBSCRIBE handshake and exits
  info       version and build info

VARIANTS
  grid | hybrid | legacy | sieve | grid-gpusim | hybrid-gpusim"
    );
}

fn load_or_generate(flags: &Flags) -> Result<Vec<KeplerElements>, String> {
    if let Some(path) = flags.value_of("--pop") {
        return io::load_population(path).map_err(|e| e.to_string());
    }
    let n = flags.usize_of("--n", 0)?;
    if n == 0 {
        return Err("provide --pop FILE or --n N".into());
    }
    let seed = flags.u64_of("--seed", PopulationConfig::default().seed)?;
    Ok(PopulationGenerator::new(PopulationConfig {
        seed,
        ..Default::default()
    })
    .generate(n))
}

fn build_config(flags: &Flags, variant: &str) -> Result<ScreeningConfig, String> {
    let threshold = flags.f64_of("--threshold", 2.0)?;
    let span = flags.f64_of("--span", 3_600.0)?;
    let mut config = match variant {
        "hybrid" | "hybrid-gpusim" => ScreeningConfig::hybrid_defaults(threshold, span),
        "sieve" => SieveScreener::default_config(threshold, span),
        _ => ScreeningConfig::grid_defaults(threshold, span),
    };
    if let Some(sps) = flags.value_of("--sps") {
        config.seconds_per_sample = sps.parse().map_err(|_| "bad --sps".to_string())?;
    }
    if flags.value_of("--threads").is_some() {
        config.threads = Some(flags.usize_of("--threads", 0)?);
    }
    config.validate()?;
    Ok(config)
}

fn screener_for(variant: &str, config: ScreeningConfig) -> Result<Box<dyn Screener>, String> {
    Ok(match variant {
        "grid" => Box::new(GridScreener::new(config)),
        "hybrid" => Box::new(HybridScreener::new(config)),
        "legacy" => Box::new(LegacyScreener::new(config)),
        "legacy-parallel" => Box::new(LegacyScreener::new(config).parallel(true)),
        "sieve" => Box::new(SieveScreener::new(config)),
        "grid-gpusim" => Box::new(GpuGridScreener::new(config)),
        "hybrid-gpusim" => Box::new(GpuHybridScreener::new(config)),
        other => return Err(format!("unknown variant `{other}`")),
    })
}

fn print_report_summary(report: &ScreeningReport) {
    println!(
        "{}: {} satellites, {} candidate pairs, {} conjunctions / {} colliding pairs in {:.3} s",
        report.variant,
        report.n_satellites,
        report.candidate_pairs,
        report.conjunction_count(),
        report.colliding_pairs().len(),
        report.timings.total.as_secs_f64()
    );
}

pub fn generate(flags: &Flags) -> Result<(), String> {
    let n = flags.usize_of("--n", 0)?;
    if n == 0 {
        return Err("--n N is required".into());
    }
    let seed = flags.u64_of("--seed", PopulationConfig::default().seed)?;
    let population = PopulationGenerator::new(PopulationConfig {
        seed,
        ..Default::default()
    })
    .generate(n);
    match flags.value_of("--out") {
        Some(path) if flags.has("--csv") => {
            let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
            io::write_population_csv(file, &population).map_err(|e| e.to_string())?;
            println!("wrote {n} satellites (CSV) to {path}");
        }
        Some(path) => {
            io::save_population(path, &population).map_err(|e| e.to_string())?;
            println!("wrote {n} satellites (JSON) to {path}");
        }
        None => {
            io::write_population_csv(std::io::stdout(), &population).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

pub fn screen(flags: &Flags) -> Result<(), String> {
    let variant = flags.value_of("--variant").unwrap_or("grid").to_string();
    let population = load_or_generate(flags)?;
    let config = build_config(flags, &variant)?;
    let screener = screener_for(&variant, config)?;
    let report = screener.screen(&population);
    print_report_summary(&report);
    for c in report.conjunctions.iter().take(10) {
        println!(
            "  {:>6} vs {:>6}  TCA {:>10.2} s  PCA {:>8.3} km",
            c.id_lo, c.id_hi, c.tca, c.pca_km
        );
    }
    if report.conjunction_count() > 10 {
        println!("  … and {} more", report.conjunction_count() - 10);
    }
    if let Some(path) = flags.value_of("--json") {
        io::save_report(path, &report).map_err(|e| e.to_string())?;
        println!("report written to {path}");
    }
    if let Some(path) = flags.value_of("--csv") {
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        io::write_conjunctions_csv(file, &report.conjunctions).map_err(|e| e.to_string())?;
        println!("conjunction CSV written to {path}");
    }
    Ok(())
}

pub fn plan(flags: &Flags) -> Result<(), String> {
    let n = flags.usize_of("--n", 0)?;
    if n == 0 {
        return Err("--n N is required".into());
    }
    let variant_label = flags.value_of("--variant").unwrap_or("hybrid");
    let variant = match variant_label {
        "grid" => Variant::Grid,
        "hybrid" => Variant::Hybrid,
        "legacy" => Variant::Legacy,
        "sieve" => Variant::Sieve,
        other => return Err(format!("unknown variant `{other}`")),
    };
    let mut config = build_config(
        flags,
        if matches!(variant, Variant::Hybrid) {
            "hybrid"
        } else {
            "grid"
        },
    )?;
    let memory_gib = flags.f64_of("--memory-gib", 8.0)?;
    config.memory_budget_bytes = (memory_gib * 1024.0 * 1024.0 * 1024.0) as usize;

    let plan = MemoryModel::new(variant).plan(n, &config);
    println!(
        "memory / parallelism plan — {} variant, {} satellites",
        variant.label(),
        n
    );
    println!("  budget                 : {memory_gib:.1} GiB");
    println!(
        "  seconds per sample     : {}{}",
        plan.seconds_per_sample,
        if plan.sps_adjusted {
            "  (auto-reduced)"
        } else {
            ""
        }
    );
    println!("  cell size (Eq. 1)      : {:.1} km", plan.cell_size_km);
    println!(
        "  estimated conjunctions : {:.0} (Extra-P model)",
        plan.estimated_conjunctions
    );
    println!("  conjunction-map slots  : {}", plan.pair_capacity);
    println!(
        "  satellites (a_s)       : {:.1} MiB",
        plan.bytes_satellites as f64 / 1048576.0
    );
    println!(
        "  Kepler data (a_k)      : {:.1} MiB",
        plan.bytes_kepler as f64 / 1048576.0
    );
    println!(
        "  conjunction map (a_ch) : {:.1} MiB",
        plan.bytes_conjunction_map as f64 / 1048576.0
    );
    println!(
        "  per-grid (a_gh + a_l)  : {:.1} MiB",
        plan.bytes_per_grid as f64 / 1048576.0
    );
    println!("  parallel grids (p)     : {}", plan.parallel_factor);
    println!("  total samples (o)      : {}", plan.total_steps);
    println!("  rounds (r_c)           : {}", plan.rounds);
    Ok(())
}

pub fn tle(flags: &Flags) -> Result<(), String> {
    let Some(path) = flags.positional() else {
        return Err("usage: kessler tle FILE [--stats]".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (records, errors) = tle_mod::parse_catalog(&text);
    println!(
        "{}: {} records parsed, {} rejected",
        path,
        records.len(),
        errors.len()
    );
    for (line, err) in errors.iter().take(5) {
        eprintln!("  near line {line}: {err}");
    }
    if flags.has("--stats") && !records.is_empty() {
        let mut altitudes: Vec<f64> = records
            .iter()
            .map(|r| r.elements.semi_major_axis - kessler_orbits::constants::R_EARTH)
            .collect();
        altitudes.sort_by(f64::total_cmp);
        let leo = altitudes.iter().filter(|&&a| a < 2_000.0).count();
        let geo = altitudes
            .iter()
            .filter(|&&a| (35_000.0..37_000.0).contains(&a))
            .count();
        println!(
            "  median altitude : {:.0} km",
            altitudes[altitudes.len() / 2]
        );
        println!("  LEO (< 2000 km) : {leo}");
        println!("  GEO band        : {geo}");
        let max_e = records
            .iter()
            .map(|r| r.elements.eccentricity)
            .fold(0.0f64, f64::max);
        println!("  max eccentricity: {max_e:.4}");
    }
    Ok(())
}

pub fn compare(flags: &Flags) -> Result<(), String> {
    let population = load_or_generate(flags)?;
    let variants = ["legacy", "sieve", "grid", "hybrid"];
    let mut reports = Vec::new();
    for v in variants {
        let config = build_config(flags, v)?;
        let report = screener_for(v, config)?.screen(&population);
        print_report_summary(&report);
        reports.push(report);
    }
    let reference = reports[0].colliding_pairs();
    for report in &reports[1..] {
        let pairs = report.colliding_pairs();
        let missed = reference.difference(&pairs).count();
        let extra = pairs.difference(&reference).count();
        println!(
            "{} vs legacy: {} missed, {} extra colliding pairs",
            report.variant, missed, extra
        );
    }
    Ok(())
}

pub fn serve(flags: &Flags) -> Result<(), String> {
    let addr = flags.value_of("--addr").unwrap_or("127.0.0.1:7878");
    let variant: Variant = flags.value_of("--variant").unwrap_or("grid").parse()?;
    if !matches!(variant, Variant::Grid | Variant::Hybrid) {
        return Err(format!(
            "the daemon serves the grid or hybrid variant, not `{}`",
            variant.label()
        ));
    }
    let config = build_config(flags, variant.label())?;

    let persist = match flags.value_of("--state-dir") {
        Some(dir) => {
            let mut persist = kessler_service::PersistOptions::new(dir);
            persist.snapshot_every = flags.u64_of("--snapshot-every", persist.snapshot_every)?;
            Some(persist)
        }
        None => None,
    };
    let defaults = kessler_service::ServerOptions::default();
    let read_timeout_s = flags.u64_of("--read-timeout", 120)?;
    let metrics_every_s = flags.u64_of("--metrics-every", 0)?;
    let shards = parse_shards(flags)?;
    let options = kessler_service::ServerOptions {
        persist,
        queue_depth: flags.usize_of("--queue-depth", defaults.queue_depth)?,
        workers: flags.usize_of("--workers", defaults.workers)?,
        read_timeout: (read_timeout_s > 0).then(|| std::time::Duration::from_secs(read_timeout_s)),
        metrics_every: (metrics_every_s > 0)
            .then(|| std::time::Duration::from_secs(metrics_every_s)),
        variant,
        shards,
        ..defaults
    };

    let server =
        kessler_service::Server::bind_with(addr, config, options).map_err(|e| e.to_string())?;
    if let Some(recovery) = server.recovery() {
        let snapshot = match recovery.snapshot_seq {
            Some(seq) => format!("snapshot at wal seq {seq}"),
            None => "no snapshot".to_string(),
        };
        println!(
            "recovered {} satellites: {snapshot}, {} wal records replayed{}{}",
            server.catalog_len(),
            recovery.replayed,
            if recovery.torn_tail {
                ", torn wal tail dropped"
            } else {
                ""
            },
            if recovery.corrupt_snapshots > 0 {
                ", corrupt snapshot(s) skipped"
            } else {
                ""
            },
        );
    }
    if flags.value_of("--pop").is_some() || flags.usize_of("--n", 0)? > 0 {
        if server.catalog_len() > 0 {
            println!(
                "catalog recovered non-empty ({} satellites); skipping preload",
                server.catalog_len()
            );
        } else {
            let population = load_or_generate(flags)?;
            let n = server.preload(&population).map_err(|e| e.to_string())?;
            println!("preloaded {n} satellites (external ids 0..{n})");
        }
    }
    let sharding = match shards {
        Some(spec) => format!(
            ", {} shards ({}x{} regimes)",
            spec.shard_count(),
            spec.alt_bands,
            spec.z_shells
        ),
        None => String::new(),
    };
    println!(
        "kessler-service listening on {} ({} variant, {} screening workers{sharding}) — JSON \
         lines: ADD UPDATE REMOVE SCREEN DELTA ADVANCE CANCEL STATUS METRICS SUBSCRIBE \
         UNSUBSCRIBE SHUTDOWN",
        server.local_addr(),
        variant.label(),
        server.workers()
    );
    server.run();
    println!("kessler-service stopped");
    Ok(())
}

/// `--shards BANDSxSHELLS` (e.g. `--shards 8x4`) partitions the catalog
/// by orbital regime; `--shards default` takes the built-in layout, and
/// `--shard-range RMIN:RMAX` overrides the altitude-band span (radii,
/// km). No flag means the flat, unsharded pipeline.
fn parse_shards(flags: &Flags) -> Result<Option<kessler_service::ShardSpec>, String> {
    let Some(value) = flags.value_of("--shards") else {
        return Ok(None);
    };
    let mut spec = kessler_service::ShardSpec::default();
    if value != "default" {
        let (bands, shells) = value
            .split_once('x')
            .ok_or_else(|| format!("bad value for --shards: `{value}` (want BANDSxSHELLS)"))?;
        spec.alt_bands = bands
            .parse()
            .map_err(|_| format!("bad band count in --shards: `{bands}`"))?;
        spec.z_shells = shells
            .parse()
            .map_err(|_| format!("bad shell count in --shards: `{shells}`"))?;
    }
    if let Some(range) = flags.value_of("--shard-range") {
        let (lo, hi) = range
            .split_once(':')
            .ok_or_else(|| format!("bad value for --shard-range: `{range}` (want RMIN:RMAX)"))?;
        spec.r_min_km = lo
            .parse()
            .map_err(|_| format!("bad radius in --shard-range: `{lo}`"))?;
        spec.r_max_km = hi
            .parse()
            .map_err(|_| format!("bad radius in --shard-range: `{hi}`"))?;
    }
    spec.validate().map_err(|e| e.to_string())?;
    Ok(Some(spec))
}

fn submit_elements(flags: &Flags) -> Result<kessler_service::ElementsSpec, String> {
    Ok(kessler_service::ElementsSpec {
        a: flags.f64_of("--a", 7_000.0)?,
        e: flags.f64_of("--e", 0.0)?,
        incl: flags.f64_of("--incl", 0.0)?,
        raan: flags.f64_of("--raan", 0.0)?,
        argp: flags.f64_of("--argp", 0.0)?,
        mean_anomaly: flags.f64_of("--m", 0.0)?,
    })
}

pub fn submit(flags: &Flags) -> Result<(), String> {
    use kessler_service::Request;
    let addr = flags.value_of("--addr").unwrap_or("127.0.0.1:7878");
    let timeout_s = flags.f64_of("--timeout", 10.0)?;
    let request = if let Some(raw) = flags.value_of("--json") {
        serde_json::from_str::<Request>(raw).map_err(|e| format!("bad --json request: {e}"))?
    } else {
        let Some(action) = flags.positional() else {
            return Err("usage: kessler submit ACTION [flags] — see `kessler help`".into());
        };
        match action {
            "add" => Request::Add {
                id: flags.u64_of("--id", 0)?,
                elements: submit_elements(flags)?,
            },
            "update" => Request::Update {
                id: flags.u64_of("--id", 0)?,
                elements: submit_elements(flags)?,
            },
            "remove" => Request::Remove {
                id: flags.u64_of("--id", 0)?,
            },
            "screen" => Request::Screen,
            "delta" => Request::Delta,
            "advance" => Request::Advance {
                dt: flags.f64_of("--dt", 60.0)?,
            },
            "cancel" => Request::Cancel {
                id: flags
                    .positional_at(1)
                    .or_else(|| flags.value_of("--req-id"))
                    .ok_or("usage: kessler submit cancel REQ_ID")?
                    .to_string(),
            },
            "tle" => return submit_tle(flags, addr, timeout_s),
            "subscribe" => return submit_subscribe(flags, addr, timeout_s),
            "status" => Request::Status,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown submit action `{other}`")),
        }
    };
    let retries = flags.u64_of("--retries", 0)?;
    let response = send_request(
        addr,
        &request,
        flags.value_of("--req-id"),
        timeout_s,
        retries,
    )?;
    if let Some(metrics) = &response.metrics {
        print_metrics(metrics);
    } else {
        let pretty = serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?;
        println!("{pretty}");
    }
    if response.ok {
        Ok(())
    } else {
        Err(response.error.unwrap_or_else(|| "request failed".into()))
    }
}

/// Client-side retry pacing: exponential from 200 ms, capped at 5 s, with
/// equal jitter so a burst of scripted submits does not stampede a daemon
/// the moment it recovers.
struct Backoff {
    delay: std::time::Duration,
    rng: u64,
}

impl Backoff {
    fn new(seed: u64) -> Backoff {
        Backoff {
            delay: std::time::Duration::from_millis(200),
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The jittered delay to sleep before the next attempt (advances the
    /// schedule).
    fn next_delay(&mut self) -> std::time::Duration {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let half = self.delay.as_micros() as u64 / 2;
        let jittered = std::time::Duration::from_micros(half + (self.rng >> 33) % (half + 1));
        self.delay = (self.delay * 2).min(std::time::Duration::from_secs(5));
        jittered
    }
}

/// May this transport error be retried for this request? Connection
/// refused means the request never reached a server, so even mutations
/// are safe. Anything after the connection was up (timeout, reset, EOF)
/// is ambiguous — the daemon may have applied the mutation and lost only
/// the reply — so mutations give up and the caller must check server
/// state, while read-only verbs retry freely.
fn transport_retryable(kind: std::io::ErrorKind, mutation: bool) -> bool {
    use std::io::ErrorKind;
    match kind {
        ErrorKind::ConnectionRefused => true,
        ErrorKind::TimedOut
        | ErrorKind::WouldBlock
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::UnexpectedEof => !mutation,
        _ => false,
    }
}

/// One request/response exchange, optionally tagged with a `req_id` so a
/// concurrent `kessler submit cancel ID` can abort it.
fn send_request_once(
    addr: &str,
    request: &kessler_service::Request,
    req_id: Option<&str>,
    timeout_s: f64,
) -> std::io::Result<kessler_service::Response> {
    let timeout = (timeout_s > 0.0).then(|| std::time::Duration::from_secs_f64(timeout_s));
    match req_id {
        None => match timeout {
            Some(t) => kessler_service::request_with_timeout(addr, request, t),
            None => kessler_service::request(addr, request),
        },
        Some(id) => {
            let mut client = kessler_service::Client::connect(addr)?;
            client.set_timeouts(timeout, timeout)?;
            client.send_tagged(request, id)
        }
    }
}

/// Send with up to `retries` re-attempts. A response is retried only when
/// the daemon explicitly reports `not_applied` (degraded mode, full
/// queue): that flag is the server's guarantee the request changed
/// nothing, so re-sending a mutation cannot double-apply it. Transport
/// errors follow [`transport_retryable`].
fn send_request(
    addr: &str,
    request: &kessler_service::Request,
    req_id: Option<&str>,
    timeout_s: f64,
    retries: u64,
) -> Result<kessler_service::Response, String> {
    let mutation = request.is_mutation();
    let mut backoff = Backoff::new(u64::from(std::process::id()));
    let mut attempt: u64 = 0;
    loop {
        let why = match send_request_once(addr, request, req_id, timeout_s) {
            Ok(response) => {
                if response.ok || !response.not_applied || attempt >= retries {
                    return Ok(response);
                }
                response.error.unwrap_or_else(|| "not applied".into())
            }
            Err(err) => {
                if attempt >= retries || !transport_retryable(err.kind(), mutation) {
                    return Err(format!(
                        "request to {addr} failed after {} attempt(s): {err}",
                        attempt + 1
                    ));
                }
                err.to_string()
            }
        };
        attempt += 1;
        let delay = backoff.next_delay();
        eprintln!("  retry {attempt}/{retries} in {delay:?}: {why}");
        std::thread::sleep(delay);
    }
}

/// Send one catalog record's request over the streaming connection,
/// re-trying (with backoff) while the daemon answers `not_applied` —
/// e.g. mid-ingest degraded mode. `not_applied` guarantees nothing
/// landed, so the re-send cannot double-apply.
fn send_record(
    client: &mut kessler_service::Client,
    request: &kessler_service::Request,
    retries: u64,
    backoff: &mut Backoff,
) -> std::io::Result<kessler_service::Response> {
    let mut attempt: u64 = 0;
    loop {
        let response = client.send(request)?;
        if response.ok || !response.not_applied || attempt >= retries {
            return Ok(response);
        }
        attempt += 1;
        let delay = backoff.next_delay();
        eprintln!(
            "  retry {attempt}/{retries} in {delay:?}: {}",
            response.error.unwrap_or_else(|| "not applied".into())
        );
        std::thread::sleep(delay);
    }
}

/// `kessler submit tle FILE` — stream a 2LE/3LE catalog into the daemon:
/// each parsed record becomes ADD (keyed by NORAD catalog number), falling
/// back to UPDATE when the id already exists, all over one connection.
fn submit_tle(flags: &Flags, addr: &str, timeout_s: f64) -> Result<(), String> {
    use kessler_service::Request;
    let Some(path) = flags.positional_at(1) else {
        return Err("usage: kessler submit tle FILE [--addr HOST:PORT]".into());
    };
    let retries = flags.u64_of("--retries", 0)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (records, errors) = tle_mod::parse_catalog(&text);
    for (line, err) in errors.iter().take(5) {
        eprintln!("  near line {line}: {err}");
    }
    let mut client = kessler_service::Client::connect(addr)
        .map_err(|e| format!("connect to {addr} failed: {e}"))?;
    let timeout = (timeout_s > 0.0).then(|| std::time::Duration::from_secs_f64(timeout_s));
    client
        .set_timeouts(timeout, timeout)
        .map_err(|e| e.to_string())?;
    let mut backoff = Backoff::new(u64::from(std::process::id()));
    let (mut added, mut updated) = (0usize, 0usize);
    let mut rejected = errors.len();
    for record in &records {
        let id = u64::from(record.catalog_number);
        let response = send_record(
            &mut client,
            &Request::Add {
                id,
                elements: kessler_service::ElementsSpec::from_elements(&record.elements),
            },
            retries,
            &mut backoff,
        )
        .map_err(|e| format!("ADD {id} failed: {e}"))?;
        if response.ok {
            added += 1;
            continue;
        }
        let duplicate = response
            .error
            .as_deref()
            .is_some_and(|e| e.contains("already exists"));
        if duplicate {
            let response = send_record(
                &mut client,
                &Request::Update {
                    id,
                    elements: kessler_service::ElementsSpec::from_elements(&record.elements),
                },
                retries,
                &mut backoff,
            )
            .map_err(|e| format!("UPDATE {id} failed: {e}"))?;
            if response.ok {
                updated += 1;
                continue;
            }
            rejected += 1;
            eprintln!("  satellite {id}: {}", response.error.unwrap_or_default());
        } else {
            rejected += 1;
            eprintln!("  satellite {id}: {}", response.error.unwrap_or_default());
        }
    }
    println!(
        "ingested {} records ({added} added, {updated} updated, {rejected} rejected)",
        added + updated
    );
    Ok(())
}

/// `kessler submit subscribe` — register for conjunction delta events and
/// stream them to stdout as screens commit. The ack goes to stderr so a
/// piped stdout carries only events, one per line.
fn submit_subscribe(flags: &Flags, addr: &str, timeout_s: f64) -> Result<(), String> {
    use kessler_service::{EventKind, Request};
    let all = flags.has("--all");
    let assets: Vec<u64> = match flags.value_of("--ids") {
        Some(csv) => csv
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("bad asset id in --ids: `{s}`"))
            })
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    if !all && assets.is_empty() {
        return Err(
            "usage: kessler submit subscribe (--all | --ids A,B,C) [--count N] [--smoke]".into(),
        );
    }
    let count = flags.u64_of("--count", 0)?;
    let smoke = flags.has("--smoke");
    let mut client = kessler_service::Client::connect(addr)
        .map_err(|e| format!("connect to {addr} failed: {e}"))?;
    let timeout = (timeout_s > 0.0).then(|| std::time::Duration::from_secs_f64(timeout_s));
    client
        .set_timeouts(timeout, timeout)
        .map_err(|e| e.to_string())?;
    let request = Request::Subscribe { assets, all };
    let response = match flags.value_of("--req-id") {
        Some(id) => client.send_tagged(&request, id),
        None => client.send(&request),
    }
    .map_err(|e| format!("SUBSCRIBE failed: {e}"))?;
    if !response.ok {
        return Err(response
            .error
            .unwrap_or_else(|| "SUBSCRIBE rejected".into()));
    }
    let ack = response
        .subscription
        .ok_or("SUBSCRIBE response carried no subscription ack")?;
    let scope = if ack.all {
        "all assets".to_string()
    } else {
        format!("{} asset(s)", ack.assets)
    };
    eprintln!(
        "subscribed as {} to {scope} ({} subscription(s) on this connection)",
        ack.sub_id, ack.active
    );
    if smoke {
        // CI handshake: prove SUBSCRIBE and UNSUBSCRIBE round-trip over
        // the evented layer, then leave without waiting for a screen.
        let response = client
            .send(&Request::Unsubscribe {
                sub_id: Some(ack.sub_id.clone()),
            })
            .map_err(|e| format!("UNSUBSCRIBE failed: {e}"))?;
        if !response.ok {
            return Err(response
                .error
                .unwrap_or_else(|| "UNSUBSCRIBE rejected".into()));
        }
        println!(
            "subscribe smoke ok: {} registered and torn down",
            ack.sub_id
        );
        return Ok(());
    }
    // Events arrive whenever a screen commits; the handshake timeout must
    // not cut the stream between them.
    client
        .set_timeouts(None, timeout)
        .map_err(|e| e.to_string())?;
    let mut seen: u64 = 0;
    loop {
        let event = client
            .next_event()
            .map_err(|e| format!("push stream ended: {e}"))?;
        let kind = match event.kind {
            EventKind::New => "new",
            EventKind::Updated => "updated",
            EventKind::Retired => "retired",
        };
        println!(
            "{kind:<8} {:>6} vs {:>6}  TCA {:>10.2} s  PCA {:>8.3} km  epoch {}{}",
            event.id_lo,
            event.id_hi,
            event.tca,
            event.pca_km,
            event.epoch,
            if event.ephemeral { "  [ephemeral]" } else { "" }
        );
        seen += 1;
        if count > 0 && seen >= count {
            return Ok(());
        }
    }
}

fn print_quantile_row(label: &str, digest: &kessler_core::HistogramSummary, unit: &str) {
    println!(
        "  {label:<16} {:>7}  {:>9.3} {:>9.3} {:>9.3} {:>9.3} {unit}",
        digest.count, digest.p50, digest.p90, digest.p99, digest.max
    );
}

fn print_phase_block(title: &str, phases: &kessler_core::PhaseSummaries) {
    println!("{title} — {} screens", phases.screens);
    println!(
        "  {:<16} {:>7}  {:>9} {:>9} {:>9} {:>9}",
        "phase", "count", "p50", "p90", "p99", "max"
    );
    print_quantile_row("insertion", &phases.insertion, "ms");
    print_quantile_row("pair extraction", &phases.pair_extraction, "ms");
    print_quantile_row("filters", &phases.filters, "ms");
    print_quantile_row("refinement", &phases.refinement, "ms");
    print_quantile_row("total", &phases.total, "ms");
}

/// Render a METRICS payload as aligned tables instead of raw JSON.
fn print_metrics(metrics: &kessler_service::MetricsSnapshot) {
    let mut any = false;
    for (title, phases) in [
        ("full screens", &metrics.full_screens),
        ("delta screens", &metrics.delta_screens),
        ("advance tail screens", &metrics.advance_tails),
    ] {
        if let Some(phases) = phases {
            print_phase_block(title, phases);
            any = true;
        }
    }
    if !any {
        println!("no screens recorded yet");
    }
    if metrics.wal_fsync_ms.is_some()
        || metrics.snapshot_write_ms.is_some()
        || metrics.snapshot_bytes.is_some()
    {
        println!("durability");
        println!(
            "  {:<16} {:>7}  {:>9} {:>9} {:>9} {:>9}",
            "", "count", "p50", "p90", "p99", "max"
        );
        if let Some(d) = &metrics.wal_fsync_ms {
            print_quantile_row("wal fsync", d, "ms");
        }
        if let Some(d) = &metrics.snapshot_write_ms {
            print_quantile_row("snapshot write", d, "ms");
        }
        if let Some(d) = &metrics.snapshot_bytes {
            print_quantile_row("snapshot size", d, "B");
        }
    }
    if metrics.snapshot_build_ms.is_some() || !metrics.worker_screen_ms.is_empty() {
        println!("execution");
        println!(
            "  {:<16} {:>7}  {:>9} {:>9} {:>9} {:>9}",
            "", "count", "p50", "p90", "p99", "max"
        );
        if let Some(d) = &metrics.snapshot_build_ms {
            print_quantile_row("snapshot build", d, "ms");
        }
        for (worker, d) in &metrics.worker_screen_ms {
            print_quantile_row(worker, d, "ms");
        }
    }
    if !metrics.shard_full_step_us.is_empty() || !metrics.shard_delta_step_us.is_empty() {
        println!("shards (extraction step, µs per step)");
        println!(
            "  {:<6} {:>7} {:>9} {:>9}   {:>7} {:>9} {:>9}",
            "shard", "full n", "full p50", "full p99", "delta n", "del p50", "del p99"
        );
        let ids: std::collections::BTreeSet<u32> = metrics
            .shard_full_step_us
            .keys()
            .chain(metrics.shard_delta_step_us.keys())
            .copied()
            .collect();
        for id in ids {
            let cell = |h: Option<&kessler_core::HistogramSummary>| match h {
                Some(h) => (h.count, h.p50, h.p99),
                None => (0, 0.0, 0.0),
            };
            let (fc, f50, f99) = cell(metrics.shard_full_step_us.get(&id));
            let (dc, d50, d99) = cell(metrics.shard_delta_step_us.get(&id));
            println!("  {id:<6} {fc:>7} {f50:>9.1} {f99:>9.1}   {dc:>7} {d50:>9.1} {d99:>9.1}");
        }
        if let Some(d) = &metrics.dirty_shards_per_snapshot {
            print_quantile_row("dirty shards", d, "");
        }
        println!(
            "  boundary entries {}, mirrored inserts {}",
            metrics.boundary_entries, metrics.mirrored_inserts
        );
    }
    if let Some(chain) = &metrics.filter_chain {
        println!("filter chain (hybrid screens)");
        println!(
            "  tested {}  apsis {}  path {}  time {}  coplanar {}  kept {}",
            chain.tested,
            chain.excluded_apsis,
            chain.excluded_path,
            chain.excluded_time,
            chain.coplanar,
            chain.kept
        );
    }
    if !metrics.requests.is_empty() {
        println!("requests");
        for (kind, counter) in &metrics.requests {
            println!(
                "  {kind:<10} ok {:>8}   errors {:>6}",
                counter.ok, counter.errors
            );
        }
    }
    println!(
        "queue high-water {}, worker respawns {}, jobs cancelled {}",
        metrics.queue_highwater, metrics.worker_respawns, metrics.jobs_cancelled
    );
    if metrics.subscribers > 0
        || metrics.events_pushed + metrics.events_dropped + metrics.slow_consumer_disconnects > 0
        || metrics.write_buffer_peak_bytes.is_some()
    {
        println!(
            "subscriptions: {} active, events pushed {}, shed {}, slow-consumer disconnects {}",
            metrics.subscribers,
            metrics.events_pushed,
            metrics.events_dropped,
            metrics.slow_consumer_disconnects
        );
        if let Some(d) = &metrics.write_buffer_peak_bytes {
            print_quantile_row("write-buf peak", d, "B");
        }
    }
    if metrics.wal_append_failures
        + metrics.snapshot_failures
        + metrics.degraded_entries
        + metrics.probe_failures
        > 0
    {
        println!(
            "resilience: wal append failures {}, snapshot failures {}, degraded entries {} \
             (recovered {}), probe failures {}",
            metrics.wal_append_failures,
            metrics.snapshot_failures,
            metrics.degraded_entries,
            metrics.degraded_recoveries,
            metrics.probe_failures
        );
    }
}

pub fn info() -> Result<(), String> {
    println!(
        "kessler {} — conjunction screening with lock-free spatial grids",
        env!("CARGO_PKG_VERSION")
    );
    println!("reproduction of Hellwig et al., IPDPS 2023 (see DESIGN.md)");
    println!("variants: grid, hybrid, legacy, sieve, grid-gpusim, hybrid-gpusim");
    println!(
        "host: {} logical CPUs",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_jittered_and_capped() {
        let mut backoff = Backoff::new(42);
        let mut previous_nominal = std::time::Duration::from_millis(200);
        for _ in 0..8 {
            let delay = backoff.next_delay();
            // Equal jitter: between half the nominal delay and the full
            // nominal delay.
            assert!(delay >= previous_nominal / 2, "{delay:?} too short");
            assert!(delay <= previous_nominal, "{delay:?} too long");
            previous_nominal = (previous_nominal * 2).min(std::time::Duration::from_secs(5));
        }
        assert_eq!(backoff.delay, std::time::Duration::from_secs(5), "capped");
        // Different seeds walk different jitter schedules.
        let a: Vec<_> = (0..4).map(|_| Backoff::new(1).next_delay()).collect();
        let b: Vec<_> = (0..4).map(|_| Backoff::new(2).next_delay()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn transport_retry_policy_is_conservative_for_mutations() {
        use std::io::ErrorKind;
        // Connection refused = the request never arrived; safe for all.
        assert!(transport_retryable(ErrorKind::ConnectionRefused, true));
        assert!(transport_retryable(ErrorKind::ConnectionRefused, false));
        // Post-connect failures are ambiguous: the daemon may have applied
        // the mutation and lost only the reply.
        for kind in [
            ErrorKind::TimedOut,
            ErrorKind::ConnectionReset,
            ErrorKind::BrokenPipe,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(!transport_retryable(kind, true), "{kind:?} must not retry");
            assert!(transport_retryable(kind, false), "{kind:?} should retry");
        }
        // Unknown errors never retry.
        assert!(!transport_retryable(ErrorKind::PermissionDenied, false));
    }
}
