//! End-to-end tests of the `kessler` binary.

use std::process::Command;

fn kessler() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kessler"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let output = kessler().args(args).output().expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let output = kessler().output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("USAGE"));
}

#[test]
fn unknown_subcommand_is_an_error() {
    let (ok, _, err) = run(&["warp"]);
    assert!(!ok);
    assert!(err.contains("unknown subcommand"));
}

#[test]
fn info_succeeds() {
    let (ok, out, _) = run(&["info"]);
    assert!(ok);
    assert!(out.contains("kessler"));
    assert!(out.contains("IPDPS 2023"));
}

#[test]
fn plan_reports_the_paper_scale_auto_adjustment() {
    let (ok, out, _) = run(&[
        "plan",
        "--n",
        "1024000",
        "--variant",
        "hybrid",
        "--memory-gib",
        "24",
        "--span",
        "3600",
    ]);
    assert!(ok, "plan failed: {out}");
    assert!(
        out.contains("auto-reduced"),
        "expected s_ps auto-reduction:\n{out}"
    );
    assert!(out.contains("parallel grids"));
}

#[test]
fn generate_screen_round_trip() {
    let dir = std::env::temp_dir();
    let pop = dir.join("kessler_cli_test_pop.json");
    let csv = dir.join("kessler_cli_test_conj.csv");
    let pop_s = pop.to_str().unwrap();
    let csv_s = csv.to_str().unwrap();

    let (ok, out, err) = run(&["generate", "--n", "300", "--seed", "7", "--out", pop_s]);
    assert!(ok, "generate failed: {err}");
    assert!(out.contains("300 satellites"));

    let (ok, out, err) = run(&[
        "screen",
        "--pop",
        pop_s,
        "--variant",
        "hybrid",
        "--threshold",
        "10",
        "--span",
        "600",
        "--csv",
        csv_s,
    ]);
    assert!(ok, "screen failed: {err}");
    assert!(out.contains("hybrid:"), "summary missing: {out}");

    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("id_lo,id_hi,tca_s,pca_km"));

    std::fs::remove_file(&pop).ok();
    std::fs::remove_file(&csv).ok();
}

#[test]
fn screen_requires_a_population_source() {
    let (ok, _, err) = run(&["screen", "--variant", "grid"]);
    assert!(!ok);
    assert!(err.contains("--pop") || err.contains("--n"));
}

#[test]
fn compare_runs_all_variants() {
    let (ok, out, err) = run(&[
        "compare",
        "--n",
        "150",
        "--threshold",
        "10",
        "--span",
        "300",
    ]);
    assert!(ok, "compare failed: {err}");
    for v in ["legacy:", "sieve:", "grid:", "hybrid:"] {
        assert!(out.contains(v), "missing variant {v} in:\n{out}");
    }
    assert!(out.contains("vs legacy"));
}

#[test]
fn tle_parses_a_catalog_file() {
    let dir = std::env::temp_dir();
    let path = dir.join("kessler_cli_test_tle.txt");
    std::fs::write(
        &path,
        "ISS (ZARYA)\n\
         1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927\n\
         2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537\n",
    )
    .unwrap();
    let (ok, out, err) = run(&["tle", path.to_str().unwrap(), "--stats"]);
    assert!(ok, "tle failed: {err}");
    assert!(out.contains("1 records parsed"));
    assert!(out.contains("median altitude"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_flag_values_fail_cleanly() {
    let (ok, _, err) = run(&["generate", "--n", "not-a-number"]);
    assert!(!ok);
    assert!(err.contains("error:"));
}

/// `--retries` re-attempts transient failures: a dead port exhausts its
/// retry budget (visible in stderr) and still fails; a live daemon
/// answers on the first attempt with no retry chatter.
#[test]
fn submit_retries_transient_failures_with_backoff() {
    use kessler_core::ScreeningConfig;
    use kessler_service::{request, Request, Server};

    // Nothing listens here: connection refused is retryable even for
    // mutations (the request never reached a server).
    let dead = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    let (ok, _, err) = run(&[
        "submit",
        "status",
        "--addr",
        &dead,
        "--retries",
        "2",
        "--timeout",
        "1",
    ]);
    assert!(!ok, "dead port must still fail after retries");
    assert!(err.contains("retry 1/2"), "first retry not logged: {err}");
    assert!(err.contains("retry 2/2"), "second retry not logged: {err}");
    assert!(err.contains("after 3 attempt(s)"), "{err}");

    // Against a live daemon the same flag is a no-op.
    let config = ScreeningConfig::grid_defaults(5.0, 120.0);
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let addr_s = addr.to_string();
    let handle = server.spawn().expect("spawn server thread");
    let (ok, out, err) = run(&[
        "submit",
        "add",
        "--id",
        "9",
        "--a",
        "7000",
        "--addr",
        &addr_s,
        "--retries",
        "3",
    ]);
    assert!(ok, "add with retries failed: {err}");
    assert!(out.contains("\"ok\": true"), "{out}");
    assert!(!err.contains("retry"), "no retries expected: {err}");

    request(addr, &Request::Shutdown).expect("SHUTDOWN");
    handle.shutdown();
}

/// `kessler submit tle FILE` streams a catalog into a live daemon: first
/// pass ADDs every record, a second pass falls back to UPDATE, and tagged
/// / cancel round-trips work from the CLI too.
#[test]
fn submit_tle_streams_a_catalog_into_the_daemon() {
    use kessler_core::ScreeningConfig;
    use kessler_service::{request, Request, Server};

    let config = ScreeningConfig::grid_defaults(5.0, 120.0);
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let addr_s = addr.to_string();
    let handle = server.spawn().expect("spawn server thread");

    let path = std::env::temp_dir().join("kessler_cli_submit_tle.txt");
    std::fs::write(
        &path,
        "ISS (ZARYA)\n\
         1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927\n\
         2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537\n\
         ISS (DEB)\n\
         1 25545U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2928\n\
         2 25545  51.6416 250.0000 0006703 130.5360 325.0288 15.72125391563533\n",
    )
    .unwrap();

    let (ok, out, err) = run(&["submit", "tle", path.to_str().unwrap(), "--addr", &addr_s]);
    assert!(ok, "submit tle failed: {err}");
    assert!(
        out.contains("ingested 2 records (2 added, 0 updated, 0 rejected)"),
        "unexpected ingest summary:\n{out}"
    );

    // Re-ingesting the same file updates every record in place.
    let (ok, out, err) = run(&["submit", "tle", path.to_str().unwrap(), "--addr", &addr_s]);
    assert!(ok, "re-ingest failed: {err}");
    assert!(
        out.contains("ingested 2 records (0 added, 2 updated, 0 rejected)"),
        "unexpected re-ingest summary:\n{out}"
    );

    let status = request(addr, &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(status.n_satellites, 2);

    // --req-id tags the request and the daemon echoes it back.
    let (ok, out, err) = run(&["submit", "screen", "--req-id", "job-cli", "--addr", &addr_s]);
    assert!(ok, "tagged screen failed: {err}");
    assert!(out.contains("\"req_id\": \"job-cli\""), "{out}");

    // CANCEL of a finished job is a clean error, not a hang.
    let (ok, _, err) = run(&["submit", "cancel", "job-cli", "--addr", &addr_s]);
    assert!(!ok);
    assert!(err.contains("no queued or running job"), "{err}");

    request(addr, &Request::Shutdown).expect("SHUTDOWN");
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}
