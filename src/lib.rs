//! # kessler — parallel satellite conjunction screening
//!
//! A from-scratch Rust reproduction of *"Satellite Collision Detection
//! using Spatial Data Structures"* (Hellwig, Czappa, Michel, Bertrand,
//! Wolf — IPDPS 2023): conjunction screening for satellite populations up
//! to the million-object scale using lock-free spatial grids instead of
//! the classical O(n²) all-on-all filter chains.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`core`] | the screeners (grid / hybrid / legacy / gpusim), planner, reports |
//! | [`orbits`] | Kepler elements, Kepler-equation solvers, two-body propagation |
//! | [`grid`] | lock-free atomic hash maps, spatial grid, candidate-pair sets |
//! | [`filters`] | apogee/perigee, coplanarity, orbit-path and time filters |
//! | [`population`] | synthetic populations, constellations, debris clouds, TLE |
//! | [`gpusim`] | the GPU execution-model simulator |
//! | [`math`] | Brent optimisation, root finding, intervals, KDE, statistics |
//! | [`service`] | long-running screening daemon: incremental catalog, delta re-screening, TCP server |
//!
//! ## Example
//!
//! ```
//! use kessler::prelude::*;
//!
//! // A small synthetic population drawn from the paper's catalog model…
//! let population = PopulationGenerator::new(PopulationConfig::default()).generate(200);
//!
//! // …screened for 2 km conjunctions over ten minutes with the grid variant.
//! let config = ScreeningConfig::grid_defaults(2.0, 600.0);
//! let report = GridScreener::new(config).screen(&population);
//! println!("{} conjunctions", report.conjunction_count());
//! ```

pub use kessler_core as core;
pub use kessler_filters as filters;
pub use kessler_gpusim as gpusim;
pub use kessler_grid as grid;
pub use kessler_math as math;
pub use kessler_orbits as orbits;
pub use kessler_population as population;
pub use kessler_service as service;

/// The most common imports in one place.
pub mod prelude {
    pub use kessler_core::{
        Conjunction, GpuGridScreener, GpuHybridScreener, GridScreener, HybridScreener,
        LegacyScreener, MemoryModel, Screener, ScreeningConfig, ScreeningReport, SieveScreener,
        Variant,
    };
    pub use kessler_orbits::{CartesianState, KeplerElements};
    pub use kessler_population::constellation::WalkerShell;
    pub use kessler_population::fragmentation::Fragmentation;
    pub use kessler_population::{PopulationConfig, PopulationGenerator};
    pub use kessler_service::{Catalog, DeltaEngine, SlidingWindow};
}
