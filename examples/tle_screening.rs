//! Screening a real TLE catalog: reads a 2LE/3LE file (e.g. Celestrak's
//! `active.txt`, the dataset behind the paper's population model), parses
//! it with the built-in TLE parser and screens it with the grid variant.
//! Falls back to a small embedded demo catalog when no file is given.
//!
//! ```text
//! cargo run --release --example tle_screening [-- <catalog.txt> [span_s]]
//! ```

use kessler::population::tle;
use kessler::prelude::*;

/// A tiny embedded demo catalog (ISS + two fabricated neighbours with
/// valid checksums) so the example runs without network access.
const DEMO: &str = "\
ISS (ZARYA)
1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927
2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537
";

fn main() {
    let mut args = std::env::args().skip(1);
    let text = match args.next() {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => {
            println!("(no catalog given — using the embedded demo TLE set)");
            DEMO.to_string()
        }
    };
    let span: f64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(3_600.0);

    let (records, errors) = tle::parse_catalog(&text);
    println!(
        "parsed {} TLE records ({} rejected)",
        records.len(),
        errors.len()
    );
    for (line, err) in errors.iter().take(5) {
        eprintln!("  record near line {line}: {err}");
    }
    if records.is_empty() {
        eprintln!("nothing to screen");
        return;
    }

    // Convert SGP4 mean elements to osculating elements at epoch via the
    // built-in SGP4 (naive interpretation is off by kilometres).
    let population: Vec<KeplerElements> = records.iter().map(tle::osculating_elements).collect();

    // With a real catalog the population is large enough for the grid
    // variant; with the demo set this simply demonstrates the plumbing.
    let config = ScreeningConfig::grid_defaults(2.0, span);
    let report = GridScreener::new(config).screen(&population);

    println!(
        "screened {} objects over {:.0} s in {:.2} s wall time",
        population.len(),
        span,
        report.timings.total.as_secs_f64()
    );
    println!("conjunctions: {}", report.conjunction_count());
    for c in report.conjunctions.iter().take(20) {
        let name = |id: u32| {
            records[id as usize]
                .name
                .clone()
                .unwrap_or_else(|| format!("#{}", records[id as usize].catalog_number))
        };
        println!(
            "  {} vs {} — TCA {:.1} s, PCA {:.3} km",
            name(c.id_lo),
            name(c.id_hi),
            c.tca,
            c.pca_km
        );
    }
}
