//! Screening → assessment pipeline: the paper's screening phase feeds "a
//! more detailed subsequent conjunction assessment process" (§III). This
//! example runs the full chain: screen a population with the hybrid
//! variant, then compute a Foster collision probability for every reported
//! conjunction and rank the risk.
//!
//! ```text
//! cargo run --release --example risk_assessment [-- <n> <span_s>]
//! ```

use kessler::core::assessment::{collision_probability, encounter_geometry, Covariance2};
use kessler::orbits::propagator::PropagationConstants;
use kessler::orbits::ContourSolver;
use kessler::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(2_000);
    let span: f64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(3_600.0);

    // Screening with a generous 10 km threshold so the assessment has
    // non-trivial input.
    let population = PopulationGenerator::new(PopulationConfig::default()).generate(n);
    let config = ScreeningConfig::hybrid_defaults(10.0, span);
    let report = HybridScreener::new(config).screen(&population);
    println!(
        "screened {n} objects over {span} s: {} conjunctions on {} pairs",
        report.conjunction_count(),
        report.colliding_pairs().len()
    );

    // Assessment assumptions: combined hard-body radius 20 m; combined
    // position uncertainty 500 m per axis (typical radar-catalog accuracy
    // a day after the last observation).
    let hard_body_km = 0.020;
    let sigma_km = 0.5;
    let cov = Covariance2::isotropic(sigma_km);
    let solver = ContourSolver::default();

    let mut assessed: Vec<(f64, &Conjunction, f64)> = report
        .conjunctions
        .iter()
        .filter_map(|c| {
            let a = PropagationConstants::from_elements(&population[c.id_lo as usize]);
            let b = PropagationConstants::from_elements(&population[c.id_hi as usize]);
            let sa = a.propagate(c.tca, &solver);
            let sb = b.propagate(c.tca, &solver);
            let geom = encounter_geometry(sa.position - sb.position, sa.velocity - sb.velocity)?;
            let pc = collision_probability(geom.miss, cov, hard_body_km, 512);
            Some((pc, c, geom.relative_speed))
        })
        .collect();
    assessed.sort_by(|a, b| b.0.total_cmp(&a.0));

    println!(
        "\nassessment (HBR = {:.0} m, σ = {:.0} m per axis):",
        hard_body_km * 1e3,
        sigma_km * 1e3
    );
    println!(
        "{:>6} {:>6} {:>11} {:>10} {:>11} {:>12}",
        "sat A", "sat B", "TCA [s]", "PCA [km]", "v_rel km/s", "Pc"
    );
    for (pc, c, v_rel) in assessed.iter().take(15) {
        println!(
            "{:>6} {:>6} {:>11.1} {:>10.3} {:>11.2} {:>12.3e}",
            c.id_lo, c.id_hi, c.tca, c.pca_km, v_rel, pc
        );
    }

    // Operators typically act above Pc = 1e-4.
    let actionable = assessed.iter().filter(|(pc, _, _)| *pc > 1e-4).count();
    println!(
        "\n{actionable} of {} conjunctions exceed the 1e-4 manoeuvre threshold",
        assessed.len()
    );
}
