//! Multi-device screening — the paper's §VI future work: "we have noted
//! that memory usage is the current limiting factor — using multiple GPUs
//! would solve this problem to some degree."
//!
//! Splits the sampling steps across several simulated devices, shows the
//! per-device memory pressure dropping, and verifies the merged result
//! matches a single-device run.
//!
//! ```text
//! cargo run --release --example multi_gpu [-- <n> <devices>]
//! ```

use kessler::core::MultiDeviceGridScreener;
use kessler::gpusim::Device;
use kessler::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(2_000);
    let device_count: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(2);

    let population = PopulationGenerator::new(PopulationConfig::default()).generate(n);
    let config = ScreeningConfig::grid_defaults(10.0, 600.0);

    // Single-device baseline.
    let single_device = Device::rtx3090_like();
    let single = GpuGridScreener::on_device(config, single_device.clone()).screen(&population);
    println!(
        "1 device : {} conjunctions in {:.2} s ({} kernel launches, {:.1} MiB H→D)",
        single.conjunction_count(),
        single.timings.total.as_secs_f64(),
        single.device_metrics.as_ref().unwrap().kernel_launches,
        single.device_metrics.as_ref().unwrap().bytes_h2d as f64 / 1048576.0
    );

    // Multi-device run.
    let devices: Vec<Device> = (0..device_count).map(|_| Device::rtx3090_like()).collect();
    let multi = MultiDeviceGridScreener::new(config, devices).screen(&population);
    println!(
        "{} devices: {} conjunctions in {:.2} s (variant {})",
        device_count,
        multi.conjunction_count(),
        multi.timings.total.as_secs_f64(),
        multi.variant
    );

    assert_eq!(
        single.colliding_pairs(),
        multi.colliding_pairs(),
        "multi-device screening must find the identical colliding pairs"
    );
    println!("\n✓ colliding-pair sets identical across device counts");
    println!(
        "per-device step share: ~{} of {} steps — the conjunction map and grid",
        multi.planner.total_steps as usize / device_count,
        multi.planner.total_steps
    );
    println!("allocations are per-device, which is exactly the memory relief §VI expects.");
}
