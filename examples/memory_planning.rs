//! Memory planning at paper scale — §V-B without the hardware bill.
//!
//! Reproduces the paper's parameterisation story: how many grids fit in
//! memory (`p`), how many rounds (`r_c`) the screening takes, and when the
//! hybrid variant's automatic `s_ps` reduction engages (it did for the
//! paper at 512 000 and 1 024 000 satellites on the 24 GB RTX 3090).
//!
//! ```text
//! cargo run --release --example memory_planning
//! ```

use kessler::prelude::*;

fn main() {
    let span = 3_600.0;
    let threshold = 2.0;

    println!("paper-scale memory plans (d = {threshold} km, span = {span} s)\n");
    println!(
        "{:>10} {:<8} {:>8} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "n", "variant", "s_ps", "cell [km]", "a_ch [MiB]", "grid [MiB]", "p", "rounds"
    );

    for &memory_gib in &[24.0f64, 64.0, 384.0] {
        println!("--- memory budget: {memory_gib} GiB ---");
        for &n in &[64_000usize, 128_000, 256_000, 512_000, 1_024_000] {
            for variant in [Variant::Grid, Variant::Hybrid] {
                let mut config = match variant {
                    Variant::Hybrid => ScreeningConfig::hybrid_defaults(threshold, span),
                    _ => ScreeningConfig::grid_defaults(threshold, span),
                };
                config.memory_budget_bytes = (memory_gib * 1024.0 * 1024.0 * 1024.0) as usize;
                let plan = MemoryModel::new(variant).plan(n, &config);
                println!(
                    "{:>10} {:<8} {:>7}{} {:>10.1} {:>12.1} {:>12.1} {:>8} {:>8}",
                    n,
                    variant.label(),
                    plan.seconds_per_sample,
                    if plan.sps_adjusted { "*" } else { " " },
                    plan.cell_size_km,
                    plan.bytes_conjunction_map as f64 / 1048576.0,
                    plan.bytes_per_grid as f64 / 1048576.0,
                    plan.parallel_factor,
                    plan.rounds
                );
            }
        }
    }
    println!("\n(* = the paper's automatic seconds-per-sample reduction engaged, §V-B:");
    println!("   \"for 512,000 satellites, the parameter is set from nine to four, and");
    println!("   for 1,024,000, it is set from nine to one\" on the 24 GB card)");
}
