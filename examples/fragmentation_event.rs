//! Fragmentation-event screening: a Yunhai-1-02-style breakup (§I of the
//! paper) throws a debris cloud into a shell occupied by a constellation;
//! the screener finds which operational satellites are at risk in the
//! hours after the event.
//!
//! ```text
//! cargo run --release --example fragmentation_event [-- <fragments>]
//! ```

use kessler::orbits::propagator::PropagationConstants;
use kessler::orbits::ContourSolver;
use kessler::prelude::*;

fn main() {
    let fragments: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().unwrap())
        .unwrap_or(2_000);

    // The victim: a satellite in a 780 km orbit (Iridium-like altitude).
    let parent = KeplerElements::new(7_158.0, 0.0008, 86.4f64.to_radians(), 0.6, 1.0, 2.5).unwrap();
    let parent_state =
        PropagationConstants::from_elements(&parent).propagate(0.0, &ContourSolver::default());

    // The breakup cloud.
    let cloud = Fragmentation {
        fragments,
        delta_v_sigma: 0.08,
        seed: 0x0B17,
    }
    .generate_from_state(parent_state)
    .expect("fragment generation must not fall short");

    // The assets: a Walker constellation in a nearby shell.
    let constellation = WalkerShell {
        altitude_km: 780.0,
        inclination: 86.4f64.to_radians(),
        total: 66,
        planes: 6,
        phasing: 2,
    }
    .generate();

    let mut population = constellation.clone();
    population.extend(cloud);
    let n_assets = constellation.len();

    println!(
        "fragmentation event: {} debris fragments vs {} constellation satellites",
        population.len() - n_assets,
        n_assets
    );

    // Screen the six hours after the event with a generous 5 km threshold
    // (debris state uncertainty right after a breakup is large).
    let config = ScreeningConfig::grid_defaults(5.0, 6.0 * 3_600.0);
    let report = GridScreener::new(config).screen(&population);

    // Asset-vs-debris encounters only.
    let mut at_risk: Vec<(u32, usize, f64)> = Vec::new(); // (asset, encounters, min pca)
    for asset in 0..n_assets as u32 {
        let encounters: Vec<_> = report
            .conjunctions
            .iter()
            .filter(|c| {
                (c.id_lo == asset && c.id_hi >= n_assets as u32)
                    || (c.id_hi == asset && c.id_lo >= n_assets as u32)
            })
            .collect();
        if !encounters.is_empty() {
            let min_pca = encounters
                .iter()
                .map(|c| c.pca_km)
                .fold(f64::INFINITY, f64::min);
            at_risk.push((asset, encounters.len(), min_pca));
        }
    }
    at_risk.sort_by(|a, b| a.2.total_cmp(&b.2));

    println!(
        "screening took {:.2} s; {} total conjunctions, {} against assets",
        report.timings.total.as_secs_f64(),
        report.conjunction_count(),
        at_risk.iter().map(|(_, e, _)| e).sum::<usize>()
    );
    println!("\nassets with debris encounters (closest first):");
    println!("{:<8} {:>12} {:>14}", "asset", "encounters", "min PCA [km]");
    for (asset, encounters, min_pca) in at_risk.iter().take(15) {
        println!("{asset:<8} {encounters:>12} {min_pca:>14.3}");
    }
    if at_risk.is_empty() {
        println!("(no asset encounters in this window — rerun with more fragments)");
    }
}
