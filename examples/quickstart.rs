//! Quickstart: generate a synthetic population and screen it with all
//! three variants, printing the paper-style summary.
//!
//! ```text
//! cargo run --release --example quickstart [-- <n_satellites> <span_seconds>]
//! ```

use kessler::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("n_satellites must be an integer"))
        .unwrap_or(500);
    let span: f64 = args
        .next()
        .map(|a| a.parse().expect("span_seconds must be a number"))
        .unwrap_or(600.0);
    let threshold_km = 2.0;

    println!("kessler quickstart — {n} satellites, {span} s span, {threshold_km} km threshold");
    println!("generating population from the catalog KDE model…");
    let population = PopulationGenerator::new(PopulationConfig::default()).generate(n);

    let grid_cfg = ScreeningConfig::grid_defaults(threshold_km, span);
    let hybrid_cfg = ScreeningConfig::hybrid_defaults(threshold_km, span);

    let sieve_cfg = SieveScreener::default_config(threshold_km, span);
    let screeners: Vec<Box<dyn Screener>> = vec![
        Box::new(GridScreener::new(grid_cfg)),
        Box::new(HybridScreener::new(hybrid_cfg)),
        Box::new(SieveScreener::new(sieve_cfg)),
        Box::new(LegacyScreener::new(grid_cfg)),
    ];

    println!(
        "\n{:<10} {:>12} {:>14} {:>14} {:>10}",
        "variant", "time [ms]", "cand. pairs", "conjunctions", "pairs"
    );
    for s in &screeners {
        let report = s.screen(&population);
        println!(
            "{:<10} {:>12.1} {:>14} {:>14} {:>10}",
            report.variant,
            report.timings.total.as_secs_f64() * 1e3,
            report.candidate_pairs,
            report.conjunction_count(),
            report.colliding_pairs().len(),
        );
    }

    println!("\ndone — see `cargo run -p kessler-bench --bin exp_fig10` for the paper's sweeps");
}
