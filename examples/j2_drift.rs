//! J2 perturbation demo — the paper's "other propagators" extension (§VI).
//!
//! Shows (1) how far two-body and J2-secular predictions diverge over a
//! screening horizon, and (2) the classic design orbits that J2 makes
//! possible: Sun-synchronous nodal regression and the frozen-apsides
//! critical inclination.
//!
//! ```text
//! cargo run --release --example j2_drift
//! ```

use kessler::orbits::constants::R_EARTH;
use kessler::orbits::j2::J2Propagator;
use kessler::orbits::propagator::PropagationConstants;
use kessler::orbits::ContourSolver;
use kessler::prelude::*;

fn main() {
    let solver = ContourSolver::default();

    // 1) Divergence of the two models over time, ISS-like orbit.
    let iss = KeplerElements::new(6_780.0, 0.0008, 51.6f64.to_radians(), 1.0, 0.5, 0.0).unwrap();
    let two_body = PropagationConstants::from_elements(&iss);
    let j2 = J2Propagator::new(iss);

    println!("two-body vs J2-secular divergence (ISS-like orbit):");
    println!("{:>12} {:>16}", "horizon", "separation [km]");
    for (label, t) in [
        ("10 min", 600.0),
        ("1 hour", 3_600.0),
        ("6 hours", 6.0 * 3_600.0),
        ("1 day", 86_400.0),
        ("1 week", 7.0 * 86_400.0),
    ] {
        let d = j2
            .propagate(t, &solver)
            .position
            .dist(two_body.position(t, &solver));
        println!("{label:>12} {d:>16.2}");
    }
    println!("→ screening horizons of minutes-to-hours (the paper's regime) stay");
    println!("  within a few km of the two-body model; day-scale catalogs need J2.\n");

    // 2) Design orbits.
    println!("J2 design orbits:");
    for alt in [500.0, 700.0, 900.0] {
        if let Some(i) = J2Propagator::sun_synchronous_inclination(R_EARTH + alt, 0.001) {
            println!(
                "  sun-synchronous @ {alt:>4.0} km altitude: i = {:.2}°",
                i.to_degrees()
            );
        }
    }
    let molniya =
        KeplerElements::new(26_600.0, 0.72, 63.4f64.to_radians(), 0.0, 4.71, 0.0).unwrap();
    let m = J2Propagator::new(molniya);
    println!(
        "  Molniya (i = 63.4°): apsidal rate = {:+.4}°/day (frozen by design)",
        m.argp_rate.to_degrees() * 86_400.0
    );
    let gps = KeplerElements::new(26_560.0, 0.01, 55f64.to_radians(), 0.0, 0.0, 0.0).unwrap();
    let g = J2Propagator::new(gps);
    println!(
        "  GPS (i = 55°):      nodal regression = {:+.4}°/day",
        g.raan_rate.to_degrees() * 86_400.0
    );
}
