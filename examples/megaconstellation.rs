//! Mega-constellation screening: the scenario the paper's introduction
//! motivates. Builds Starlink-like Walker shells plus a background
//! population, screens them with the hybrid variant, and reports the
//! conjunction picture (intra-shell vs background).
//!
//! ```text
//! cargo run --release --example megaconstellation [-- <shell_sats> <background>]
//! ```

use kessler::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let shell_sats: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(720);
    let background: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(500);

    // Two Walker shells at slightly different altitudes (Starlink- and
    // OneWeb-style) plus a KDE background of legacy satellites/debris.
    let shell_a = WalkerShell {
        altitude_km: 550.0,
        inclination: 53f64.to_radians(),
        total: shell_sats,
        planes: 24.min(shell_sats).max(1),
        phasing: 1,
    };
    let shell_b = WalkerShell {
        altitude_km: 1_200.0,
        inclination: 87.9f64.to_radians(),
        total: shell_sats / 2,
        planes: 12.min(shell_sats / 2).max(1),
        phasing: 1,
    };

    let mut population = shell_a.generate();
    let first_shell_end = population.len();
    population.extend(shell_b.generate());
    let second_shell_end = population.len();
    population.extend(PopulationGenerator::new(PopulationConfig::default()).generate(background));

    println!(
        "megaconstellation: {} shell-A + {} shell-B + {} background = {} objects",
        first_shell_end,
        second_shell_end - first_shell_end,
        background,
        population.len()
    );

    let config = ScreeningConfig::hybrid_defaults(2.0, 1_800.0);
    let report = HybridScreener::new(config).screen(&population);

    let classify = |id: u32| -> &'static str {
        let id = id as usize;
        if id < first_shell_end {
            "shell-A"
        } else if id < second_shell_end {
            "shell-B"
        } else {
            "background"
        }
    };

    let mut intra_shell = 0usize;
    let mut shell_vs_background = 0usize;
    let mut background_only = 0usize;
    for c in &report.conjunctions {
        match (classify(c.id_lo), classify(c.id_hi)) {
            ("background", "background") => background_only += 1,
            (a, b) if a == b => intra_shell += 1,
            (a, b) if a == "background" || b == "background" => shell_vs_background += 1,
            _ => intra_shell += 1, // shell-A vs shell-B: constellation traffic
        }
    }

    println!(
        "screened {} candidate pairs in {:.1} ms",
        report.candidate_pairs,
        report.timings.total.as_secs_f64() * 1e3
    );
    println!("conjunctions: {}", report.conjunction_count());
    println!("  constellation-internal : {intra_shell}");
    println!("  shell vs background    : {shell_vs_background}");
    println!("  background vs background: {background_only}");

    if let Some(stats) = &report.filter_stats {
        println!(
            "filter chain: {} tested → {} apsis-excluded, {} path-excluded, {} time-excluded, {} coplanar, {} kept",
            stats.tested,
            stats.excluded_apsis,
            stats.excluded_path,
            stats.excluded_time,
            stats.coplanar,
            stats.kept
        );
    }

    // Walker shells are phased precisely so that same-shell satellites
    // never collide; a well-designed shell should show ~0 same-plane
    // conjunctions unless the background intrudes.
    let worst = report
        .conjunctions
        .iter()
        .min_by(|a, b| a.pca_km.total_cmp(&b.pca_km));
    if let Some(w) = worst {
        println!(
            "closest approach: {} vs {} at t = {:.1} s, {:.3} km",
            w.id_lo, w.id_hi, w.tca, w.pca_km
        );
    }
}
